open Umrs_core

type error =
  | Io of string
  | Malformed of string
  | Mismatch of string

let pp_error fmt = function
  | Io m -> Format.fprintf fmt "io error: %s" m
  | Malformed m -> Format.fprintf fmt "malformed: %s" m
  | Mismatch m -> Format.fprintf fmt "mismatch: %s" m

let error_to_string e = Format.asprintf "%a" pp_error e

(* Internal control flow: every validation failure in [build]/[open_]
   funnels through [fail] and is turned into [Error] at the boundary,
   so no file content can ever escape as an exception. *)
exception Fail of error

let fail e = raise (Fail e)
let failf kind fmt = Printf.ksprintf (fun s -> fail (kind s)) fmt

let guard_result f =
  match f () with
  | v -> Ok v
  | exception Fail e -> Error e
  | exception Sys_error m -> Error (Io m)

type meta = {
  x_version : int;
  x_variant : Canonical.variant;
  x_p : int;
  x_q : int;
  x_d : int;
  x_count : int;
  x_corpus_checksum : int64;
  x_stride : int;
  x_samples : int;
  x_checksum : int64;
}

let magic = "UMRSXIDX"
let current_version = 1
let header_bytes = 56
let default_stride = 64
let index_path corpus = corpus ^ ".umrsx"

let variant_byte = function Canonical.Full -> 0 | Canonical.Positional -> 1

let sample_count ~count ~stride =
  if count = 0 then 0 else (count + stride - 1) / stride

let header_image m =
  let b = Bytes.make header_bytes '\000' in
  Bytes.blit_string magic 0 b 0 8;
  Bytes.set_uint16_le b 8 m.x_version;
  Bytes.set_uint8 b 10 (variant_byte m.x_variant);
  Bytes.set_uint16_le b 12 m.x_p;
  Bytes.set_uint16_le b 14 m.x_q;
  Bytes.set_uint16_le b 16 m.x_d;
  Bytes.set_int64_le b 20 (Int64.of_int m.x_count);
  Bytes.set_int64_le b 28 m.x_corpus_checksum;
  Bytes.set_int32_le b 36 (Int32.of_int m.x_stride);
  Bytes.set_int32_le b 40 (Int32.of_int m.x_samples);
  Bytes.set_int64_le b 44 m.x_checksum;
  b

let header_of_image b =
  if Bytes.sub_string b 0 8 <> magic then
    fail (Malformed "Query: bad index magic");
  let x_version = Bytes.get_uint16_le b 8 in
  if x_version <> current_version then
    failf (fun s -> Malformed s) "Query: unsupported index version %d" x_version;
  let x_variant =
    match Bytes.get_uint8 b 10 with
    | 0 -> Canonical.Full
    | 1 -> Canonical.Positional
    | v -> failf (fun s -> Malformed s) "Query: unknown variant byte %d" v
  in
  let x_p = Bytes.get_uint16_le b 12 in
  let x_q = Bytes.get_uint16_le b 14 in
  let x_d = Bytes.get_uint16_le b 16 in
  if x_p < 1 || x_q < 1 || x_d < 1 then
    fail (Malformed "Query: bad index dimensions");
  let x_count = Int64.to_int (Bytes.get_int64_le b 20) in
  if x_count < 0 then fail (Malformed "Query: bad index count");
  let x_corpus_checksum = Bytes.get_int64_le b 28 in
  let x_stride = Int32.to_int (Bytes.get_int32_le b 36) in
  if x_stride < 1 then fail (Malformed "Query: bad index stride");
  let x_samples = Int32.to_int (Bytes.get_int32_le b 40) in
  if x_samples < 0 then fail (Malformed "Query: bad index sample count");
  let x_checksum = Bytes.get_int64_le b 44 in
  { x_version; x_variant; x_p; x_q; x_d; x_count; x_corpus_checksum;
    x_stride; x_samples; x_checksum }

(* Checksum of the whole index: header image with the checksum field
   zeroed, then the raw sample payload. Covering the header closes the
   corpus format's blind spot where reserved/metadata bytes could be
   flipped undetected. *)
let index_checksum_raw header payload =
  let image = Bytes.copy header in
  Bytes.set_int64_le image 44 0L;
  Corpus.fnv64 (Corpus.fnv64 Corpus.fnv64_seed image) payload

let index_checksum m payload =
  index_checksum_raw (header_image { m with x_checksum = 0L }) payload

(* ---------- corpus-side plumbing ---------- *)

(* Record [i] starts at this byte of the corpus file. *)
let record_offset ~rec_bytes i = Corpus.header_bytes + (i * rec_bytes)

(* Validate that the corpus file's size is exactly what its header
   implies (division form: immune to overflow from corrupt counts).
   This is what makes every later [seek_in] provably in-bounds. *)
let check_corpus_size ~(h : Corpus.header) ~rec_bytes ~file_bytes =
  let avail = file_bytes - Corpus.header_bytes in
  let consistent =
    if avail < 0 then false
    else if rec_bytes = 0 then avail = 0 && h.Corpus.count <= 1
    else
      avail mod rec_bytes = 0 && avail / rec_bytes = h.Corpus.count
  in
  if not consistent then
    fail (Malformed "Query: corpus size inconsistent with its header")

let with_in_bin path f =
  let ic = try open_in_bin path with Sys_error m -> fail (Io m) in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () -> f ic)

let corpus_header path =
  match Corpus.info ~path with
  | h -> h
  | exception Sys_error m -> fail (Io m)
  | exception Invalid_argument m -> fail (Malformed m)

(* ---------- build ---------- *)

let build ~corpus ?(stride = default_stride) ?out () =
  if stride < 1 then invalid_arg "Query.build: stride must be >= 1";
  let out = Option.value out ~default:(index_path corpus) in
  guard_result @@ fun () ->
  let h = corpus_header corpus in
  let p = h.Corpus.p and q = h.Corpus.q and d = h.Corpus.d in
  let rec_bytes = Corpus.Record.bytes ~p ~q ~d in
  with_in_bin corpus @@ fun ic ->
  check_corpus_size ~h ~rec_bytes ~file_bytes:(in_channel_length ic);
  seek_in ic Corpus.header_bytes;
  let buf = Bytes.create rec_bytes in
  let checksum = ref Corpus.fnv64_seed in
  let prev = ref None in
  let rev_samples = ref [] in
  for i = 0 to h.Corpus.count - 1 do
    really_input ic buf 0 rec_bytes;
    checksum := Corpus.fnv64 !checksum buf;
    (match Corpus.Record.decode ~p ~q ~d ~variant:h.Corpus.variant buf with
    | m ->
      (match !prev with
      | Some pm when Matrix.compare_lex pm m >= 0 ->
        failf (fun s -> Malformed s)
          "Query: corpus record %d not in strictly increasing order" i
      | _ -> ());
      prev := Some m
    | exception Invalid_argument msg ->
      failf (fun s -> Malformed s) "Query: corpus record %d undecodable: %s" i
        msg);
    if i mod stride = 0 then rev_samples := Bytes.copy buf :: !rev_samples
  done;
  if !checksum <> h.Corpus.checksum then
    fail (Malformed "Query: corpus checksum mismatch");
  let samples = Array.of_list (List.rev !rev_samples) in
  let s = Array.length samples in
  assert (s = sample_count ~count:h.Corpus.count ~stride);
  let payload = Bytes.create (s * (8 + rec_bytes)) in
  Array.iteri
    (fun i key ->
      let pos = i * (8 + rec_bytes) in
      Bytes.set_int64_le payload pos
        (Int64.of_int (8 * record_offset ~rec_bytes (i * stride)));
      Bytes.blit key 0 payload (pos + 8) rec_bytes)
    samples;
  let m =
    { x_version = current_version; x_variant = h.Corpus.variant;
      x_p = p; x_q = q; x_d = d; x_count = h.Corpus.count;
      x_corpus_checksum = h.Corpus.checksum; x_stride = stride;
      x_samples = s; x_checksum = 0L }
  in
  let m = { m with x_checksum = index_checksum m payload } in
  let oc = try open_out_bin out with Sys_error msg -> fail (Io msg) in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () ->
      output_bytes oc (header_image m);
      output_bytes oc payload);
  m

(* ---------- open ---------- *)

(* Per-domain query state: a record source plus reusable buffers, so
   one decoder's scratch is shared across a whole batch slice without
   crossing domains.  A [Chan] source is a private buffered channel
   (seek + read per block); a [Map] source shares the handle's single
   read-only mapping — records come out of the page cache with one
   memcpy and no syscalls, and cursors cost nothing to open. *)
type src =
  | Chan of in_channel
  | Map of Mmap.t

type cursor = {
  k_src : src;
  k_rec : Bytes.t;    (* one record *)
  k_block : Bytes.t;  (* up to [stride] records, for block scans *)
}

type t = {
  t_corpus : string;
  t_header : Corpus.header;
  t_meta : meta;
  t_rec_bytes : int;
  t_width : int;              (* bits per entry *)
  t_keys : Matrix.t array;    (* decoded sample keys, records [i * stride] *)
  t_map : Mmap.t option;      (* corpus mapping, when opened ~mmap:true *)
  t_cursor : cursor;
  mutable t_closed : bool;
}

(* A block scan touches at most [min stride count] records, so the
   block buffer is sized by that — an index whose (u32) stride field is
   absurd cannot force a giant allocation. And if an allocation fails
   anyway, the just-opened descriptor must not leak: the construction
   is protected. *)
let make_cursor ~corpus ~map ~rec_bytes ~stride ~count =
  let k_src =
    match map with
    | Some m -> Map m
    | None -> Chan (open_in_bin corpus)
  in
  match
    let block_recs = min stride (max count 1) in
    { k_src; k_rec = Bytes.create rec_bytes;
      k_block = Bytes.create (block_recs * rec_bytes) }
  with
  | c -> c
  | exception e ->
    (match k_src with Chan ic -> close_in_noerr ic | Map _ -> ());
    raise e

let open_cursor t =
  make_cursor ~corpus:t.t_corpus ~map:t.t_map ~rec_bytes:t.t_rec_bytes
    ~stride:t.t_meta.x_stride ~count:t.t_meta.x_count

let close_cursor c =
  match c.k_src with Chan ic -> close_in_noerr ic | Map _ -> ()

let open_ ~corpus ?index ?(mmap = false) () =
  let index = Option.value index ~default:(index_path corpus) in
  guard_result @@ fun () ->
  let h = corpus_header corpus in
  let p = h.Corpus.p and q = h.Corpus.q and d = h.Corpus.d in
  let rec_bytes = Corpus.Record.bytes ~p ~q ~d in
  with_in_bin corpus (fun ic ->
      check_corpus_size ~h ~rec_bytes ~file_bytes:(in_channel_length ic));
  (* The corpus mapping is created before the index is parsed so the
     size validation above and the binding checks below all apply to
     the same inode generation we will serve from. *)
  let map =
    if not mmap then None
    else
      match Mmap.map corpus with
      | m -> Some m
      | exception Unix.Unix_error (e, _, _) -> fail (Io (Unix.error_message e))
  in
  let read_index_image () =
    if mmap then begin
      (* parse the sidecar from a mapping too: same read path, and the
         pages are shared with every other opener of this index *)
      match Mmap.map index with
      | im -> (Mmap.length im, fun off len -> Mmap.sub im ~off ~len)
      | exception Unix.Unix_error (e, _, _) -> fail (Io (Unix.error_message e))
    end
    else
      let image =
        with_in_bin index @@ fun ic ->
        let n = in_channel_length ic in
        let b = Bytes.create n in
        really_input ic b 0 n;
        b
      in
      (Bytes.length image, fun off len -> Bytes.sub image off len)
  in
  let m, payload =
    let file_bytes, slice = read_index_image () in
    if file_bytes < header_bytes then
      fail (Malformed "Query: truncated index header");
    let hb = slice 0 header_bytes in
    let m = header_of_image hb in
    let x_rec_bytes =
      Corpus.Record.bytes ~p:m.x_p ~q:m.x_q ~d:m.x_d
    in
    (* Payload size check in division form (overflow-proof), against
       the index's own header — internal consistency before binding. *)
    let payload_bytes = file_bytes - header_bytes in
    let entry = 8 + x_rec_bytes in
    if
      (m.x_samples = 0 && payload_bytes <> 0)
      || (m.x_samples > 0
          && (payload_bytes mod m.x_samples <> 0
             || payload_bytes / m.x_samples <> entry))
    then fail (Malformed "Query: index size inconsistent with its header");
    let payload = slice header_bytes payload_bytes in
    (* Over the raw on-disk header bytes, NOT a re-serialized image:
       re-serializing would zero the reserved bytes and let damage
       there slip through. *)
    if index_checksum_raw hb payload <> m.x_checksum then
      fail (Malformed "Query: index checksum mismatch");
    (m, payload)
  in
  (* Binding: a well-formed index must describe THIS corpus. *)
  if
    m.x_p <> p || m.x_q <> q || m.x_d <> d
    || m.x_variant <> h.Corpus.variant
  then fail (Mismatch "Query: index instance differs from the corpus");
  if m.x_count <> h.Corpus.count then
    fail (Mismatch "Query: index record count differs from the corpus");
  if m.x_corpus_checksum <> h.Corpus.checksum then
    fail (Mismatch "Query: index was built for a different corpus (checksum)");
  if m.x_samples <> sample_count ~count:m.x_count ~stride:m.x_stride then
    fail (Malformed "Query: index sample count does not match count/stride");
  let keys =
    Array.init m.x_samples (fun i ->
        let pos = i * (8 + rec_bytes) in
        let off = Bytes.get_int64_le payload pos in
        let expect = 8 * record_offset ~rec_bytes (i * m.x_stride) in
        if off <> Int64.of_int expect then
          failf (fun s -> Malformed s)
            "Query: sample %d has offset %Ld, expected %d" i off expect;
        match
          Corpus.Record.decode ~p ~q ~d ~variant:h.Corpus.variant
            (Bytes.sub payload (pos + 8) rec_bytes)
        with
        | key -> key
        | exception Invalid_argument msg ->
          failf (fun s -> Malformed s) "Query: sample %d undecodable: %s" i msg)
  in
  Array.iteri
    (fun i key ->
      if i > 0 && Matrix.compare_lex keys.(i - 1) key >= 0 then
        failf (fun s -> Malformed s) "Query: sample keys not strictly sorted at %d" i)
    keys;
  let t =
    { t_corpus = corpus; t_header = h; t_meta = m; t_rec_bytes = rec_bytes;
      t_width = Umrs_bitcode.Codes.bits_needed (d - 1); t_keys = keys;
      t_map = map;
      t_cursor =
        make_cursor ~corpus ~map ~rec_bytes ~stride:m.x_stride ~count:m.x_count;
      t_closed = false }
  in
  t

let close t =
  if not t.t_closed then begin
    t.t_closed <- true;
    close_cursor t.t_cursor
  end

let header t = t.t_header
let meta t = t.t_meta

let check_open t = if t.t_closed then invalid_arg "Query: handle is closed"

(* ---------- point queries ---------- *)

let read_records_into t c ~lo ~n buf =
  let off = record_offset ~rec_bytes:t.t_rec_bytes lo in
  let len = n * t.t_rec_bytes in
  match c.k_src with
  | Chan ic -> (
    seek_in ic off;
    try really_input ic buf 0 len
    with End_of_file -> invalid_arg "Query: corpus changed on disk")
  | Map m -> (
    try Mmap.blit_to_bytes m ~src_off:off buf ~dst_off:0 ~len
    with Invalid_argument _ -> invalid_arg "Query: corpus changed on disk")

let nth_with t c i =
  if i < 0 || i >= t.t_header.Corpus.count then
    invalid_arg "Query.nth: record index out of range";
  read_records_into t c ~lo:i ~n:1 c.k_rec;
  Corpus.Record.decode ~p:t.t_header.Corpus.p ~q:t.t_header.Corpus.q
    ~d:t.t_header.Corpus.d ~variant:t.t_header.Corpus.variant c.k_rec

(* Compare the [nfields] fields at the reader position against
   [target k], without materializing a matrix. *)
let compare_fields rd ~width ~nfields target =
  let res = ref 0 in
  (try
     for k = 0 to nfields - 1 do
       let x = 1 + Umrs_bitcode.Bitbuf.read_bits rd ~width in
       let y = target k in
       if x <> y then begin
         res := (if x < y then -1 else 1);
         raise Exit
       end
     done
   with Exit -> ());
  !res

(* Generic positional search. [cmp_key key] and [cmp_rec rd] compare a
   sample key / an encoded record against the target (negative when
   the record sorts below it). Returns the index of the first record
   whose comparison is [>= 0] ([> 0] when [strict]), plus whether that
   record compares equal — [count, false] when there is none.
   Touches the file for at most [stride - 1] records, read as one
   contiguous block and decoded through a single seekable reader. *)
let search t c ~cmp_key ~cmp_rec ~strict =
  let count = t.t_header.Corpus.count in
  if count = 0 then (0, false)
  else begin
    let stride = t.t_meta.x_stride in
    let s = Array.length t.t_keys in
    let pred v = if strict then v > 0 else v >= 0 in
    let lo = ref 0 and hi = ref s in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if pred (cmp_key t.t_keys.(mid)) then hi := mid else lo := mid + 1
    done;
    let sj = !lo in
    if sj = 0 then (0, cmp_key t.t_keys.(0) = 0)
    else begin
      let block_lo = (sj - 1) * stride in
      let block_hi = if sj < s then sj * stride else count in
      let n = block_hi - block_lo - 1 in
      let found = ref None in
      if n > 0 then begin
        read_records_into t c ~lo:(block_lo + 1) ~n c.k_block;
        let bits =
          Umrs_bitcode.Bitbuf.of_bytes c.k_block ~len:(n * t.t_rec_bytes * 8)
        in
        let rd = Umrs_bitcode.Bitbuf.reader bits in
        let r = ref 0 in
        while !found = None && !r < n do
          Umrs_bitcode.Bitbuf.seek rd (!r * t.t_rec_bytes * 8);
          let v = cmp_rec rd in
          if pred v then found := Some (block_lo + 1 + !r, v = 0);
          incr r
        done
      end;
      match !found with
      | Some hit -> hit
      | None ->
        if sj < s then (block_hi, cmp_key t.t_keys.(sj) = 0)
        else (count, false)
    end
  end

let check_shape t m =
  let p, q = Matrix.dims m in
  if p <> t.t_header.Corpus.p || q <> t.t_header.Corpus.q then
    invalid_arg "Query: matrix shape differs from the corpus instance"

let locate_with t c m =
  check_shape t m;
  let q = t.t_header.Corpus.q in
  search t c
    ~cmp_key:(fun key -> Matrix.compare_lex key m)
    ~cmp_rec:(fun rd ->
      compare_fields rd ~width:t.t_width
        ~nfields:(t.t_header.Corpus.p * q)
        (fun k -> Matrix.get m (k / q) (k mod q)))
    ~strict:false

let rank_with t c m = fst (locate_with t c m)
let mem_with t c m = snd (locate_with t c m)

let range_prefix_with t c prefix =
  let pq = t.t_header.Corpus.p * t.t_header.Corpus.q in
  if Array.length prefix > pq then
    invalid_arg "Query.range_prefix: prefix longer than p*q";
  let nfields = Array.length prefix in
  let cmp_key key = -Matrix.compare_lex_prefix prefix key in
  let cmp_rec rd =
    compare_fields rd ~width:t.t_width ~nfields (fun k -> prefix.(k))
  in
  let lo, _ = search t c ~cmp_key ~cmp_rec ~strict:false in
  let hi, _ = search t c ~cmp_key ~cmp_rec ~strict:true in
  (lo, hi)

let cgraph_with t c i =
  let m = nth_with t c i in
  let q = t.t_header.Corpus.q in
  let rows =
    Array.init (t.t_header.Corpus.p) (fun r ->
        Canonical.normalize_row (Array.init q (Matrix.get m r)))
  in
  Cgraph.of_matrix (Matrix.create rows)

let nth t i = check_open t; nth_with t t.t_cursor i
let mem t m = check_open t; mem_with t t.t_cursor m
let rank t m = check_open t; rank_with t t.t_cursor m
let range_prefix t prefix = check_open t; range_prefix_with t t.t_cursor prefix
let cgraph t i = check_open t; cgraph_with t t.t_cursor i

(* ---------- batched queries ---------- *)

type request =
  | Nth of int
  | Mem of Matrix.t
  | Rank of Matrix.t
  | Range_prefix of int array
  | Cgraph_of of int

type response =
  | R_matrix of Matrix.t
  | R_found of bool
  | R_rank of int
  | R_range of int * int
  | R_graph of Cgraph.t

let batches_counter = Telemetry.counter "query.batches"
let requests_counter = Telemetry.counter "query.requests"

(* In-memory estimate of where a request will land in the file, used
   only to sort a batch so each domain's slice reads forward. *)
let sample_floor t cmp_key =
  let s = Array.length t.t_keys in
  let lo = ref 0 and hi = ref s in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if cmp_key t.t_keys.(mid) >= 0 then hi := mid else lo := mid + 1
  done;
  max 0 ((!lo - 1) * t.t_meta.x_stride)

let estimate_position t = function
  | Nth i | Cgraph_of i -> i
  | Mem m | Rank m -> sample_floor t (fun key -> Matrix.compare_lex key m)
  | Range_prefix prefix ->
    sample_floor t (fun key -> -Matrix.compare_lex_prefix prefix key)

let validate_request t i = function
  | Nth r | Cgraph_of r ->
    if r < 0 || r >= t.t_header.Corpus.count then
      invalid_arg
        (Printf.sprintf "Query.batch: request %d: record %d out of range" i r)
  | Mem m | Rank m ->
    (try check_shape t m
     with Invalid_argument _ ->
       invalid_arg
         (Printf.sprintf "Query.batch: request %d: matrix shape mismatch" i))
  | Range_prefix prefix ->
    if Array.length prefix > t.t_header.Corpus.p * t.t_header.Corpus.q then
      invalid_arg
        (Printf.sprintf "Query.batch: request %d: prefix longer than p*q" i)

let exec t c = function
  | Nth i -> R_matrix (nth_with t c i)
  | Mem m -> R_found (mem_with t c m)
  | Rank m -> R_rank (rank_with t c m)
  | Range_prefix prefix ->
    let lo, hi = range_prefix_with t c prefix in
    R_range (lo, hi)
  | Cgraph_of i -> R_graph (cgraph_with t c i)

let batch ?domains t requests =
  check_open t;
  let n = Array.length requests in
  Array.iteri (validate_request t) requests;
  let t0 = Unix.gettimeofday () in
  let order = Array.init n Fun.id in
  let pos = Array.map (estimate_position t) requests in
  Array.sort
    (fun a b ->
      let c = compare pos.(a) pos.(b) in
      if c <> 0 then c else compare a b)
    order;
  let sorted =
    Umrs_graph.Parallel.map_range_with ?domains
      ~init:(fun () -> open_cursor t)
      ~finally:close_cursor n
      (fun c j -> exec t c requests.(order.(j)))
  in
  let responses = Array.make n (R_rank 0) in
  Array.iteri (fun j resp -> responses.(order.(j)) <- resp) sorted;
  Telemetry.add batches_counter 1;
  Telemetry.add requests_counter n;
  if Telemetry.enabled () then
    Telemetry.emit "query.batch"
      [ ("requests", Telemetry.Int n);
        ("seconds", Telemetry.Float (Unix.gettimeofday () -. t0)) ];
  responses
