open Umrs_core

type piece = {
  pc_index : int;
  pc_lo : int;
  pc_hi : int;
  pc_key : int array;
  pc_corpus : string;
  pc_header : Corpus.header;
}

let matrix_key (m : Matrix.t) = Array.concat (Array.to_list m.Matrix.entries)

let piece_path ~out_dir ~base k =
  Filename.concat out_dir (Printf.sprintf "%s.shard%d" base k)

(* Near-equal contiguous rank ranges: shard k covers
   [k*count/n, (k+1)*count/n).  Every shard is non-empty when
   count >= n, and the ranges tile [0, count) exactly. *)
let bounds ~count ~shards k =
  (k * count / shards, (k + 1) * count / shards)

let split ~corpus ~shards ?(out_dir = Filename.dirname corpus)
    ?(stride = Query.default_stride) ?(index = true) () =
  if shards < 1 then invalid_arg "Shard.split: shards must be >= 1";
  if stride < 1 then invalid_arg "Shard.split: stride must be >= 1";
  match Corpus.open_reader ~path:corpus with
  | exception Sys_error m -> Error m
  | exception Invalid_argument m -> Error m
  | reader ->
    let h = Corpus.reader_header reader in
    if h.Corpus.count < shards then begin
      Corpus.close_reader reader;
      Error
        (Printf.sprintf "corpus has %d records, cannot cut %d non-empty shards"
           h.Corpus.count shards)
    end
    else begin
      if not (Sys.file_exists out_dir) then Sys.mkdir out_dir 0o755;
      let base = Filename.basename corpus in
      (* One sequential pass over the source: records stream from the
         reader straight into the current piece's writer, so memory
         stays one record regardless of corpus size. *)
      let pieces = ref [] in
      let finish () =
        Corpus.close_reader reader;
        Ok (Array.of_list (List.rev !pieces))
      in
      let rec write_piece k =
        if k >= shards then finish ()
        else begin
          let lo, hi = bounds ~count:h.Corpus.count ~shards k in
          let path = piece_path ~out_dir ~base k in
          let w =
            Corpus.create_writer ~path ~variant:h.Corpus.variant ~p:h.Corpus.p
              ~q:h.Corpus.q ~d:h.Corpus.d
          in
          let key = ref [||] in
          (match
             for i = lo to hi - 1 do
               match Corpus.read_next reader with
               | None -> invalid_arg "Shard.split: corpus shorter than header"
               | Some m ->
                 if i = lo then key := matrix_key m;
                 Corpus.write w m
             done
           with
          | exception e ->
            (try ignore (Corpus.close_writer w) with _ -> ());
            Corpus.close_reader reader;
            raise e
          | () -> ());
          let ph = Corpus.close_writer w in
          (match
             if index then
               match Query.build ~corpus:path ~stride () with
               | Ok _ -> Ok ()
               | Error e -> Error (Query.error_to_string e)
             else Ok ()
           with
          | Error m ->
            Corpus.close_reader reader;
            Error m
          | Ok () ->
            pieces :=
              { pc_index = k; pc_lo = lo; pc_hi = hi; pc_key = !key;
                pc_corpus = path; pc_header = ph }
              :: !pieces;
            write_piece (k + 1))
        end
      in
      write_piece 0
    end
