/* C stubs for the event-loop core: epoll + eventfd on Linux, poll(2)
   and RLIMIT_NOFILE everywhere POSIX.  The OCaml side treats epoll as
   optional (umrs_evl_epoll_available) and falls back to select. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <caml/memory.h>
#include <caml/fail.h>
#include <caml/threads.h>
#include <caml/unixsupport.h>

#include <errno.h>
#include <string.h>

#ifndef _WIN32
#include <poll.h>
#include <sys/resource.h>
#include <unistd.h>

/* (fd, in|out bitmask, timeout_ms) -> revents bitmask 1=readable
   2=writable 4=hup/err.  EINTR and timeout both report 0 events; the
   caller re-checks its own clock. */
CAMLprim value umrs_evl_poll1(value vfd, value vevents, value vtimeout)
{
  struct pollfd p;
  int n, flags;
  p.fd = Int_val(vfd);
  p.events = 0;
  if (Int_val(vevents) & 1) p.events |= POLLIN;
  if (Int_val(vevents) & 2) p.events |= POLLOUT;
  p.revents = 0;
  caml_release_runtime_system();
  n = poll(&p, 1, Int_val(vtimeout));
  caml_acquire_runtime_system();
  if (n == -1) {
    if (errno == EINTR) return Val_int(0);
    uerror("poll", Nothing);
  }
  if (n == 0) return Val_int(0);
  flags = 0;
  if (p.revents & (POLLIN | POLLHUP | POLLERR)) flags |= 1;
  if (p.revents & (POLLOUT | POLLHUP | POLLERR)) flags |= 2;
  if (p.revents & (POLLHUP | POLLERR | POLLNVAL)) flags |= 4;
  return Val_int(flags);
}

/* Raise the soft RLIMIT_NOFILE toward [target], capped at the hard
   limit; returns the soft limit actually in effect. */
CAMLprim value umrs_evl_raise_nofile(value vtarget)
{
  struct rlimit rl;
  rlim_t want = (rlim_t)Long_val(vtarget);
  if (getrlimit(RLIMIT_NOFILE, &rl) == -1) uerror("getrlimit", Nothing);
  if (rl.rlim_cur < want) {
    rl.rlim_cur = (want > rl.rlim_max) ? rl.rlim_max : want;
    if (setrlimit(RLIMIT_NOFILE, &rl) == -1) uerror("setrlimit", Nothing);
  }
  return Val_long((long)rl.rlim_cur);
}

#else /* _WIN32 */

CAMLprim value umrs_evl_poll1(value vfd, value vevents, value vtimeout)
{
  (void)vfd; (void)vevents; (void)vtimeout;
  caml_failwith("Umrs_evloop: poll unsupported on this platform");
}

CAMLprim value umrs_evl_raise_nofile(value vtarget)
{
  (void)vtarget;
  return Val_long(0);
}

#endif

#ifdef __linux__
#include <sys/epoll.h>
#include <sys/eventfd.h>

CAMLprim value umrs_evl_epoll_available(value unit)
{
  (void)unit;
  return Val_true;
}

CAMLprim value umrs_evl_epoll_create(value unit)
{
  int fd;
  (void)unit;
  fd = epoll_create1(EPOLL_CLOEXEC);
  if (fd == -1) uerror("epoll_create1", Nothing);
  return Val_int(fd);
}

/* op: 0=add 1=mod 2=del; events: 1=in 2=out.  EPOLLRDHUP is always
   armed so a peer half-close surfaces as readable (read returns 0). */
CAMLprim value umrs_evl_epoll_ctl(value vep, value vop, value vfd, value vevents)
{
  static const int ops[3] = { EPOLL_CTL_ADD, EPOLL_CTL_MOD, EPOLL_CTL_DEL };
  struct epoll_event ev;
  memset(&ev, 0, sizeof ev);
  if (Int_val(vevents) & 1) ev.events |= EPOLLIN;
  if (Int_val(vevents) & 2) ev.events |= EPOLLOUT;
  ev.events |= EPOLLRDHUP;
  ev.data.fd = Int_val(vfd);
  if (epoll_ctl(Int_val(vep), ops[Int_val(vop)], Int_val(vfd), &ev) == -1)
    uerror("epoll_ctl", Nothing);
  return Val_unit;
}

#define UMRS_EVL_MAX_EVENTS 1024

/* Fills [out] (a flat int array) with (fd, flags) pairs; returns the
   event count.  Releases the runtime lock for the wait so worker
   domains keep running. */
CAMLprim value umrs_evl_epoll_wait(value vep, value vout, value vtimeout)
{
  struct epoll_event evs[UMRS_EVL_MAX_EVENTS];
  int max = (int)(Wosize_val(vout) / 2);
  int i, n, flags;
  if (max > UMRS_EVL_MAX_EVENTS) max = UMRS_EVL_MAX_EVENTS;
  caml_release_runtime_system();
  n = epoll_wait(Int_val(vep), evs, max, Int_val(vtimeout));
  caml_acquire_runtime_system();
  if (n == -1) {
    if (errno == EINTR) return Val_int(0);
    uerror("epoll_wait", Nothing);
  }
  for (i = 0; i < n; i++) {
    flags = 0;
    if (evs[i].events & (EPOLLIN | EPOLLRDHUP | EPOLLHUP | EPOLLERR)) flags |= 1;
    if (evs[i].events & (EPOLLOUT | EPOLLHUP | EPOLLERR)) flags |= 2;
    if (evs[i].events & (EPOLLHUP | EPOLLERR)) flags |= 4;
    /* immediates only: no caml_modify needed */
    Field(vout, 2 * i) = Val_int(evs[i].data.fd);
    Field(vout, 2 * i + 1) = Val_int(flags);
  }
  return Val_int(n);
}

CAMLprim value umrs_evl_eventfd(value unit)
{
  int fd;
  (void)unit;
  fd = eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (fd == -1) uerror("eventfd", Nothing);
  return Val_int(fd);
}

#else /* !__linux__ */

CAMLprim value umrs_evl_epoll_available(value unit)
{
  (void)unit;
  return Val_false;
}

CAMLprim value umrs_evl_epoll_create(value unit)
{
  (void)unit;
  caml_failwith("Umrs_evloop: epoll unsupported on this platform");
}

CAMLprim value umrs_evl_epoll_ctl(value vep, value vop, value vfd, value vevents)
{
  (void)vep; (void)vop; (void)vfd; (void)vevents;
  caml_failwith("Umrs_evloop: epoll unsupported on this platform");
}

CAMLprim value umrs_evl_epoll_wait(value vep, value vout, value vtimeout)
{
  (void)vep; (void)vout; (void)vtimeout;
  caml_failwith("Umrs_evloop: epoll unsupported on this platform");
}

CAMLprim value umrs_evl_eventfd(value unit)
{
  (void)unit;
  caml_failwith("Umrs_evloop: eventfd unsupported on this platform");
}

#endif
