(* Edge-level readiness abstraction: one poller owns many fds.

   Two backends behind one interface: Linux epoll (via the C stubs)
   and a portable [Unix.select] fallback.  Select is only correct for
   descriptors below FD_SETSIZE (1024 on glibc) — callers that expect
   thousands of connections must use the epoll backend; [create]
   picks it automatically where available.

   The loop owns a wakeup descriptor (eventfd on Linux, a self-pipe
   elsewhere) so other threads/domains can interrupt a blocking wait:
   [wakeup] is async-signal-ish cheap and coalesces, [wait] drains it
   internally and never reports it to the handler. *)

external epoll_available : unit -> bool = "umrs_evl_epoll_available"
external epoll_create : unit -> Unix.file_descr = "umrs_evl_epoll_create"

external epoll_ctl : Unix.file_descr -> int -> Unix.file_descr -> int -> unit
  = "umrs_evl_epoll_ctl"

external epoll_wait_ : Unix.file_descr -> int array -> int -> int
  = "umrs_evl_epoll_wait"

external eventfd : unit -> Unix.file_descr = "umrs_evl_eventfd"
external poll1_ : Unix.file_descr -> int -> int -> int = "umrs_evl_poll1"
external raise_nofile : int -> int = "umrs_evl_raise_nofile"

(* On Unix a [file_descr] is the descriptor number itself. *)
external int_of_fd : Unix.file_descr -> int = "%identity"

(* ---------- single-descriptor waits (poll(2), no FD_SETSIZE cap) ---------- *)

let poll1 fd ~readable ~writable ~timeout_ms =
  let mask = (if readable then 1 else 0) lor (if writable then 2 else 0) in
  poll1_ fd mask timeout_ms

let wait_readable fd ~timeout_ms =
  poll1 fd ~readable:true ~writable:false ~timeout_ms land 1 <> 0

let wait_writable fd ~timeout_ms =
  poll1 fd ~readable:false ~writable:true ~timeout_ms land 2 <> 0

(* ---------- the loop ---------- *)

type backend =
  | Epoll
  | Select

let max_batch = 256

type t = {
  backend : backend;
  ep : Unix.file_descr;  (* epoll fd; unused by Select *)
  evbuf : int array;  (* flat (fd, flags) pairs filled by epoll_wait *)
  (* Select interest set, keyed by descriptor number.  Also used by
     the epoll backend purely to answer [fd_count]. *)
  interest : (int, Unix.file_descr * int) Hashtbl.t;
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  wake_buf : Bytes.t;
  n_wakeups : int Atomic.t;
  n_waits : int Atomic.t;
  mutable closed : bool;
}

let backend t = t.backend
let fd_count t = Hashtbl.length t.interest
let wakeups t = Atomic.get t.n_wakeups
let waits t = Atomic.get t.n_waits

let create ?backend () =
  let backend =
    match backend with
    | Some b -> b
    | None -> (
      (* UMRS_EVLOOP_BACKEND=select forces the portable fallback — how
         CI exercises the Select data path end to end on boxes where
         epoll exists and would otherwise always win the auto-pick. *)
      match Sys.getenv_opt "UMRS_EVLOOP_BACKEND" with
      | Some "select" -> Select
      | Some "epoll" -> Epoll
      | _ -> if epoll_available () then Epoll else Select)
  in
  let ep =
    match backend with
    | Epoll -> epoll_create ()
    | Select -> Unix.stdin (* placeholder, never used *)
  in
  let wake_r, wake_w =
    match backend with
    | Epoll ->
      let efd = eventfd () in
      (efd, efd)
    | Select ->
      let r, w = Unix.pipe ~cloexec:true () in
      Unix.set_nonblock r;
      Unix.set_nonblock w;
      (r, w)
  in
  let t =
    { backend; ep; evbuf = Array.make (2 * max_batch) 0;
      interest = Hashtbl.create 64; wake_r; wake_w;
      wake_buf = Bytes.create 8; n_wakeups = Atomic.make 0;
      n_waits = Atomic.make 0; closed = false }
  in
  (match backend with
  | Epoll -> epoll_ctl t.ep 0 t.wake_r 1
  | Select -> ());
  t

let mask_of ~readable ~writable =
  (if readable then 1 else 0) lor (if writable then 2 else 0)

let add t fd ~readable ~writable =
  let mask = mask_of ~readable ~writable in
  (match t.backend with
  | Epoll -> epoll_ctl t.ep 0 fd mask
  | Select -> ());
  Hashtbl.replace t.interest (int_of_fd fd) (fd, mask)

let modify t fd ~readable ~writable =
  let mask = mask_of ~readable ~writable in
  (match t.backend with
  | Epoll -> epoll_ctl t.ep 1 fd mask
  | Select -> ());
  Hashtbl.replace t.interest (int_of_fd fd) (fd, mask)

let remove t fd =
  let k = int_of_fd fd in
  if Hashtbl.mem t.interest k then begin
    Hashtbl.remove t.interest k;
    match t.backend with
    | Epoll -> (
      (* EBADF/ENOENT here means the caller already closed the fd,
         which deregisters it from epoll on its own *)
      try epoll_ctl t.ep 2 fd 0 with Unix.Unix_error _ -> ())
    | Select -> ()
  end

(* A coalescing nudge: full pipe/counter means a wakeup is already
   pending, which is all we need. *)
let wakeup t =
  Atomic.incr t.n_wakeups;
  let one = Bytes.make 8 '\000' in
  Bytes.set one 7 '\001';
  (* eventfd counters are little-endian u64 on all OCaml targets we
     build for; the pipe backend only needs any byte at all *)
  Bytes.set one 0 '\001';
  try
    ignore
      (Unix.write t.wake_w one 0 (match t.backend with Epoll -> 8 | Select -> 1))
  with
  | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
  | Unix.Unix_error (Unix.EBADF, _, _) -> ()

let drain_wake t =
  let rec go () =
    match Unix.read t.wake_r t.wake_buf 0 8 with
    | n when n > 0 -> go ()
    | _ -> ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  go ()

let wait_epoll t ~timeout_ms ~handler =
  let n = epoll_wait_ t.ep t.evbuf timeout_ms in
  let delivered = ref 0 in
  let wake_no = int_of_fd t.wake_r in
  for i = 0 to n - 1 do
    let fdno = t.evbuf.(2 * i) in
    let flags = t.evbuf.((2 * i) + 1) in
    if fdno = wake_no then drain_wake t
    else begin
      incr delivered;
      (* only fds still registered: a handler earlier in this batch may
         have closed this one *)
      match Hashtbl.find_opt t.interest fdno with
      | None -> ()
      | Some (fd, _) ->
        handler fd ~readable:(flags land 1 <> 0) ~writable:(flags land 2 <> 0)
          ~hup:(flags land 4 <> 0)
    end
  done;
  !delivered

let wait_select t ~timeout_ms ~handler =
  let rs = ref [ t.wake_r ] and ws = ref [] in
  Hashtbl.iter
    (fun _ (fd, mask) ->
      if mask land 1 <> 0 then rs := fd :: !rs;
      if mask land 2 <> 0 then ws := fd :: !ws)
    t.interest;
  let timeout = float_of_int timeout_ms /. 1000.0 in
  match Unix.select !rs !ws [] timeout with
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> 0
  | readable, writable, _ ->
    let delivered = ref 0 in
    let fire fd ~r ~w =
      if fd = t.wake_r then drain_wake t
      else if Hashtbl.mem t.interest (int_of_fd fd) then begin
        incr delivered;
        handler fd ~readable:r ~writable:w ~hup:false
      end
    in
    List.iter (fun fd -> fire fd ~r:true ~w:(List.memq fd writable)) readable;
    List.iter
      (fun fd -> if not (List.memq fd readable) then fire fd ~r:false ~w:true)
      writable;
    !delivered

let wait t ~timeout_ms ~handler =
  Atomic.incr t.n_waits;
  match t.backend with
  | Epoll -> wait_epoll t ~timeout_ms ~handler
  | Select -> wait_select t ~timeout_ms ~handler

let close t =
  if not t.closed then begin
    t.closed <- true;
    Hashtbl.reset t.interest;
    (try Unix.close t.wake_r with Unix.Unix_error _ -> ());
    if t.wake_w <> t.wake_r then
      (try Unix.close t.wake_w with Unix.Unix_error _ -> ());
    match t.backend with
    | Epoll -> ( try Unix.close t.ep with Unix.Unix_error _ -> ())
    | Select -> ()
  end
