(** Readiness event loop over many descriptors: Linux epoll when
    available, [Unix.select] fallback elsewhere.

    The select backend is subject to FD_SETSIZE (1024 on glibc): any
    descriptor numbered at or above it is undefined behaviour for
    select, so high-connection servers must run on [Epoll].  [create]
    without an explicit backend picks epoll whenever the platform has
    it.

    All mutating operations ([add]/[modify]/[remove]/[wait]) belong to
    the single poller thread; only [wakeup] may be called from other
    threads or domains. *)

type t

type backend =
  | Epoll
  | Select

val epoll_available : unit -> bool

val create : ?backend:backend -> unit -> t
(** Defaults to [Epoll] when the platform supports it. The environment
    variable [UMRS_EVLOOP_BACKEND] ([select] or [epoll]) overrides the
    auto-pick — but never an explicit [?backend] argument — so tests
    and CI can force the portable fallback on Linux. *)

val backend : t -> backend

val add : t -> Unix.file_descr -> readable:bool -> writable:bool -> unit
val modify : t -> Unix.file_descr -> readable:bool -> writable:bool -> unit

val remove : t -> Unix.file_descr -> unit
(** Forgets the descriptor; safe to call after the fd is closed and on
    fds that were never added. *)

val wait :
  t ->
  timeout_ms:int ->
  handler:
    (Unix.file_descr -> readable:bool -> writable:bool -> hup:bool -> unit) ->
  int
(** Blocks up to [timeout_ms] (-1 = forever), invokes [handler] once
    per ready descriptor, and returns how many were delivered.  0
    means timeout, EINTR, or a bare [wakeup].  The wakeup descriptor
    is drained internally and never reported.  A descriptor closed by
    an earlier handler of the same batch is skipped, not reported
    stale. *)

val wakeup : t -> unit
(** Interrupt a concurrent [wait].  Thread- and domain-safe,
    coalescing, never blocks. *)

val wakeups : t -> int
(** Cumulative count of [wakeup] calls. *)

val waits : t -> int
(** Cumulative count of [wait] calls (loop iterations). *)

val fd_count : t -> int
(** Registered descriptors, wakeup fd excluded. *)

val close : t -> unit
(** Close the loop's own descriptors.  Registered fds stay open; they
    belong to the caller. *)

(** {1 Single-descriptor waits}

    poll(2)-based, so valid for any descriptor number — use these
    instead of [Unix.select] for one-off readiness waits. *)

val poll1 : Unix.file_descr -> readable:bool -> writable:bool -> timeout_ms:int -> int
(** Returns a bitmask: 1 = readable, 2 = writable, 4 = hup/error.
    0 on timeout or EINTR. *)

val wait_readable : Unix.file_descr -> timeout_ms:int -> bool
val wait_writable : Unix.file_descr -> timeout_ms:int -> bool

val raise_nofile : int -> int
(** [raise_nofile target] lifts the soft RLIMIT_NOFILE toward [target]
    (capped at the hard limit) and returns the soft limit now in
    effect. *)

val int_of_fd : Unix.file_descr -> int
