(** The pluggable I/O seam: real syscalls by default, fault-injectable
    under a {!Fault} plan, one atomic load of overhead when disabled.

    {2 Tracked output files}

    [out] wraps an [out_channel]. While a plan is installed the file
    is registered with {!Fault}'s crash model (fsync watermarks, torn
    tails, rename rollback) and writes are buffered so [File_write]
    fault points fire per flushed chunk, not per call. With no plan,
    operations go straight to the channel. *)

type out

val open_out : string -> out
(** Opens (and truncates) a file for binary writing, like
    [open_out_bin]. *)

val output_bytes : out -> Bytes.t -> unit
val output_string : out -> string -> unit

val pos : out -> int
val seek : out -> int -> unit

val fsync : out -> unit
(** Flush and fsync. Under a plan this advances the file's durability
    watermark — or silently doesn't, when a [Drop_fsync] fault
    fires. *)

val close : out -> unit
val close_noerr : out -> unit
(** Best-effort close for error paths; never raises, fires no fault
    point. *)

val rename : src:string -> dst:string -> unit
(** [Sys.rename], recorded as rollback-eligible under a plan until
    {!fsync_dir} on the destination's directory pins it. *)

val fsync_dir : string -> unit
(** Fsync a directory so renames into it survive power loss. Silently
    tolerates filesystems that refuse directory fsync. *)

(** {2 EINTR-hardened raw syscalls}

    Wrappers over [Unix] that retry [EINTR] (injected storms and real
    signals take the same path) and surface injected socket faults as
    the errors real peers cause. *)

val sleepf : float -> unit
(** [Unix.sleepf] that re-sleeps the remainder after [EINTR]. *)

val read : Unix.file_descr -> Bytes.t -> int -> int -> int
val write_all : Unix.file_descr -> Bytes.t -> int -> int -> unit
(** Writes the whole range, looping over short writes. *)

val write_once : Unix.file_descr -> Bytes.t -> int -> int -> int
(** A single [Unix.write] with socket faults applied, for non-blocking
    descriptors: returns the byte count of one syscall, propagates
    [EAGAIN] to the owning event loop, and honours injected short
    writes by capping the attempt. *)

val accept : ?cloexec:bool -> Unix.file_descr -> Unix.file_descr * Unix.sockaddr
val connect : Unix.file_descr -> Unix.sockaddr -> unit
(** After a real [EINTR] the in-progress connection is awaited with
    [poll] (valid above FD_SETSIZE, unlike [select]) and its
    disposition read from [SO_ERROR], per POSIX — calling [connect]
    again would fail with [EALREADY]. *)

(** {2 Channel-path hooks}

    Called by {!Umrs_server.Wire} around frame reads/writes on
    buffered channels (which retry EINTR themselves): inject delays,
    resets ([Sys_error]) and half-closes ([End_of_file]). *)

val on_sock_read : unit -> unit
val on_sock_write : unit -> unit

val worker_hook : unit -> unit
(** Called by the server inside a worker's request handler; raises
    {!Fault.Injected} when the plan kills this handler. *)
