(** Fault-schedule load driver for the serving layer.

    {!run_level} starts a fresh server on the given address, installs a
    {!Umrs_fault.Fault.seeded} plan at the given intensity, and drives
    the server with {!Umrs_client.Robust} connections through a fixed
    request mix (pings, corpus reads, graph fetches, short sleeps).
    Faults hit both sides of every socket and the worker pool, so the
    run exercises reconnection, idempotency-gated retry, the circuit
    breaker, and the server's worker supervisor at once.

    The accounting invariant is "no silent loss": every request
    resolves to success, degraded, or failed — a hang, a malformed
    reply, or a server that cannot answer a plain fault-free probe
    afterwards makes the level [Error]. Counted failures (transport
    gave up after retries) are data for the caller to judge, not
    fatal. *)

type level = {
  l_intensity : float;
  l_requests : int;
  l_success : int;       (** answered first try, well-shaped *)
  l_degraded : int;      (** answered after retries/reconnects, or a
                             server verdict (Rejected/Overloaded/
                             Timed_out) *)
  l_failed : int;        (** transport error after retries, breaker
                             fast-fail, or mis-shaped reply *)
  l_worker_crashes : int;(** worker domains the supervisor replaced *)
  l_breaker_opens : int;
  l_breaker_fastfails : int;
  l_recovery_p50 : float;(** seconds; over degraded-with-retry calls *)
  l_recovery_p95 : float;
  l_seconds : float;     (** wall-clock of the driving loop *)
}

val run_level :
  ?seed:int -> ?requests:int -> ?conns:int -> ?workers:int ->
  ?queue_capacity:int -> intensity:float -> corpus:string ->
  addr:Umrs_server.Wire.addr -> unit -> (level, string) result
(** The corpus must already have its sidecar index
    ({!Umrs_store.Query.build}). The server is started before the plan
    is installed and drained after it is removed, so setup and teardown
    run fault-free; each level gets its own server, so levels are
    independent. Deterministic fault schedule per [seed]; wall-clock
    classification (what needed a retry) still varies with
    scheduling. *)
