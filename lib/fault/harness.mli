(** Crash-consistency harness for the corpus builder.

    {!crash_matrix} measures how many fault points a checkpointed
    build of the (p, q, d) instance passes, then replays the build
    once per point with a simulated power loss ({!Umrs_fault.Fault})
    exactly there. After each crash it asserts the store's two
    recovery claims: a published corpus (if the crash landed after the
    final rename) verifies clean, and a [--resume] run completes with
    output byte-identical to an uninterrupted reference build.

    Every replay is deterministic given its seed; a failure carries
    the (seed, point) pair that reproduces it, following the
    [UMRS_TEST_SEED] convention. *)

type failure = {
  f_at : int;       (** crash-point index; -1 for the counting run *)
  f_seed : int;     (** reproduces the run: seed argument + [f_at] *)
  f_detail : string;
}

type summary = {
  s_p : int;
  s_q : int;
  s_d : int;
  s_domains : int;
  s_points : int;    (** fault points in one full build *)
  s_crashes : int;   (** replays that crashed (= points when healthy) *)
  s_seed : int;
  s_failures : failure list;  (** empty iff every invariant held *)
}

val crash_matrix :
  ?variant:Umrs_core.Canonical.variant ->
  ?domains:int ->
  ?checkpoint_every:int ->
  ?seed:int ->
  ?torn_align:int ->
  ?on_progress:(at:int -> points:int -> unit) ->
  p:int -> q:int -> d:int -> scratch:string -> unit -> summary
(** Runs entirely under [scratch] (created if needed): a reference
    corpus, a checkpoint directory, and the crashed/resumed output
    live there and are reused across replays. Single-domain sweeps are
    exactly reproducible; multi-domain sweeps fire the same decision
    sequence but scheduling decides which domain meets the crash. *)
