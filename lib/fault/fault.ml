(* Deterministic fault injection.

   A [plan] is a pure decision function from (fault point kind, global
   firing index) to an [action], installed process-wide by [with_plan].
   Instrumented code calls [fire] at each fault point; with no plan
   installed that is one atomic load and a branch — the zero-cost-
   when-disabled contract the hot paths rely on.

   Simulated crashes model power loss, not just process death: the
   state machine tracks, for every file opened through {!Io}, the
   prefix guaranteed durable by its last fsync, and every rename not
   yet pinned by a directory fsync. When a [Crash] action fires, the
   run is stopped (every later [fire] in any domain raises {!Crashed})
   and, once the run has unwound, [with_plan] mutilates the filesystem
   the way a power cut could have: unsynced tails are torn at a seeded
   byte boundary and unpinned renames may be rolled back. Recovery
   code is then exercised against that state.

   Decisions depend only on (seed, index, point kind), never on wall
   clock or interleaving, so a failure reproduces from its printed
   seed — the same convention as test/gen.ml. Multi-domain runs share
   one atomic firing counter: the set of decisions is reproducible,
   their assignment to domains follows the actual schedule. *)

exception Crashed
exception Injected of string

type point =
  | File_write
  | File_fsync
  | File_close
  | File_rename
  | Dir_fsync
  | Sock_read
  | Sock_write
  | Sock_accept
  | Sock_connect
  | Worker
  | Heartbeat_loss
  | Partition

let point_tag = function
  | File_write -> 0
  | File_fsync -> 1
  | File_close -> 2
  | File_rename -> 3
  | Dir_fsync -> 4
  | Sock_read -> 5
  | Sock_write -> 6
  | Sock_accept -> 7
  | Sock_connect -> 8
  | Worker -> 9
  | Heartbeat_loss -> 10
  | Partition -> 11

let point_name = function
  | File_write -> "file_write"
  | File_fsync -> "file_fsync"
  | File_close -> "file_close"
  | File_rename -> "file_rename"
  | Dir_fsync -> "dir_fsync"
  | Sock_read -> "sock_read"
  | Sock_write -> "sock_write"
  | Sock_accept -> "sock_accept"
  | Sock_connect -> "sock_connect"
  | Worker -> "worker"
  | Heartbeat_loss -> "heartbeat_loss"
  | Partition -> "partition"

type action =
  | Pass
  | Crash
  | Drop_fsync
  | Short_write of int
  | Eintr of int
  | Delay of float
  | Reset
  | Half_close
  | Exn of string

type plan = {
  label : string;
  seed : int;
  torn_align : int;
  decide : point -> int -> action;
}

let make_plan ?(label = "custom") ?(seed = 0) ?(torn_align = 1) decide =
  if torn_align < 1 then invalid_arg "Fault.make_plan: torn_align";
  { label; seed; torn_align; decide }

let pass_plan ?(seed = 0) () =
  make_plan ~label:"pass" ~seed (fun _ _ -> Pass)

let crash_at ?(torn_align = 1) ~seed ~at () =
  if at < 0 then invalid_arg "Fault.crash_at: at";
  make_plan ~label:(Printf.sprintf "crash@%d" at) ~seed ~torn_align
    (fun _ ix -> if ix = at then Crash else Pass)

(* One independent decision per firing: a fresh PRNG keyed on
   (seed, index, point kind), so the choice at firing [ix] is the same
   whichever domain gets there and whatever happened before it. *)
let seeded ?(torn_align = 512) ~seed ~intensity () =
  if intensity < 0.0 || intensity > 1.0 then
    invalid_arg "Fault.seeded: intensity outside [0, 1]";
  let decide point ix =
    let st = Random.State.make [| 0xFA17; seed; ix; point_tag point |] in
    if Random.State.float st 1.0 >= intensity then Pass
    else
      let delay () = Delay (0.0005 +. Random.State.float st 0.004) in
      match point with
      | Sock_read -> (
        match Random.State.int st 4 with
        | 0 -> Reset
        | 1 -> Half_close
        | _ -> delay ())
      | Sock_write -> if Random.State.bool st then Reset else delay ()
      | Sock_accept -> Eintr (1 + Random.State.int st 3)
      | Sock_connect -> if Random.State.int st 3 = 0 then Reset else delay ()
      | Worker -> Exn "injected worker fault"
      (* membership points: a non-Pass action means the beat (or the
         whole coordinator exchange) is lost — the agent skips it, and
         enough in a row looks exactly like a dead node *)
      | Heartbeat_loss | Partition -> Reset
      | File_fsync | Dir_fsync -> Drop_fsync
      | File_write | File_close | File_rename -> Pass
  in
  make_plan ~label:(Printf.sprintf "seeded:%g" intensity) ~seed ~torn_align
    decide

(* ---------- tracked filesystem state (used by Io) ---------- *)

type entry = {
  mutable e_path : string;
  e_oc : out_channel;
  mutable e_synced : int;  (* prefix guaranteed durable (bytes) *)
  mutable e_open : bool;
  mutable e_dead : bool;   (* inode replaced by a later rename *)
}

type rename_rec = {
  rn_src : string;
  rn_dst : string;
  rn_prior : string option;  (* dst content before the rename *)
}

type state = {
  plan : plan;
  counter : int Atomic.t;
  crashed : bool Atomic.t;
  lock : Mutex.t;
  mutable files : entry list;          (* registration order, newest first *)
  mutable renames : rename_rec list;   (* pending (dir not fsynced), newest first *)
}

let active : state option Atomic.t = Atomic.make None

let enabled () = Atomic.get active <> None

let fire point =
  match Atomic.get active with
  | None -> Pass
  | Some st ->
    if Atomic.get st.crashed then raise Crashed;
    let ix = Atomic.fetch_and_add st.counter 1 in
    (match st.plan.decide point ix with
    | Crash ->
      Atomic.set st.crashed true;
      raise Crashed
    | a -> a)

let points_fired () =
  match Atomic.get active with
  | None -> 0
  | Some st -> Atomic.get st.counter

(* Registry operations below are called by Io only while a plan is
   installed; with no plan they are never reached. *)

let track_open ~path oc =
  match Atomic.get active with
  | None -> None
  | Some st ->
    let e = { e_path = path; e_oc = oc; e_synced = 0; e_open = true;
              e_dead = false } in
    Mutex.lock st.lock;
    st.files <- e :: st.files;
    Mutex.unlock st.lock;
    Some e

let read_file_opt path =
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> Some (really_input_string ic (in_channel_length ic)))

let write_file path data =
  let oc = open_out_bin path in
  output_string oc data;
  close_out oc

(* Record a rename: remember what the destination held (rolling back
   means restoring it), retire any tracked entry whose inode the
   rename just replaced, and move the renamed entry to its new name. *)
let track_rename ~src ~dst =
  match Atomic.get active with
  | None -> Sys.rename src dst
  | Some st ->
    Mutex.lock st.lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock st.lock)
      (fun () ->
        let prior = read_file_opt dst in
        Sys.rename src dst;
        List.iter
          (fun e ->
            if not e.e_dead then
              if e.e_path = dst then e.e_dead <- true
              else if e.e_path = src then e.e_path <- dst)
          st.files;
        st.renames <- { rn_src = src; rn_dst = dst; rn_prior = prior }
                      :: st.renames)

(* A directory fsync pins every pending rename inside that directory:
   those can no longer be lost to a crash. *)
let commit_renames ~dir =
  match Atomic.get active with
  | None -> ()
  | Some st ->
    Mutex.lock st.lock;
    st.renames <-
      List.filter (fun rn -> Filename.dirname rn.rn_dst <> dir) st.renames;
    Mutex.unlock st.lock

(* ---------- crash application ---------- *)

(* Runs single-threaded, after every domain of the crashed run has
   unwound. Mutates the filesystem into one state a power cut at the
   crash point could have produced. *)
let apply_crash st =
  let rng = Random.State.make [| 0xC4A5; st.plan.seed |] in
  let align = max 1 st.plan.torn_align in
  (* 1. Tear unsynced tails. Data beyond the last fsync lives in the
     page cache; any aligned prefix of it may have reached the disk. *)
  List.iter
    (fun e ->
      if e.e_open then begin
        (try flush e.e_oc with Sys_error _ -> ());
        close_out_noerr e.e_oc;
        e.e_open <- false
      end;
      if not e.e_dead then
        match (Unix.stat e.e_path).Unix.st_size with
        | exception Unix.Unix_error _ -> ()
        | size ->
          if size > e.e_synced then begin
            let keep = e.e_synced + Random.State.int rng (size - e.e_synced + 1) in
            let keep = max e.e_synced (keep - (keep mod align)) in
            if keep < size then Unix.truncate e.e_path keep
          end)
    (List.rev st.files);
  (* 2. Roll back un-pinned renames. For each target path the durable
     directory entry is some prefix of the rename sequence aimed at
     it; pick the prefix length and undo the suffix newest-first. *)
  let by_dst = Hashtbl.create 8 in
  List.iter
    (fun rn ->
      let older = try Hashtbl.find by_dst rn.rn_dst with Not_found -> [] in
      (* renames list is newest-first, so [older] accumulates with the
         oldest at the head after this reversal *)
      Hashtbl.replace by_dst rn.rn_dst (rn :: older))
    (List.rev st.renames);
  Hashtbl.iter
    (fun _dst chain_newest_first ->
      let n = List.length chain_newest_first in
      let durable = Random.State.int rng (n + 1) in
      (* undo the (n - durable) newest renames, newest first *)
      List.iteri
        (fun i rn ->
          if i < n - durable then begin
            (match read_file_opt rn.rn_dst with
            | Some data -> write_file rn.rn_src data
            | None -> ());
            match rn.rn_prior with
            | Some data -> write_file rn.rn_dst data
            | None -> (try Sys.remove rn.rn_dst with Sys_error _ -> ())
          end)
        chain_newest_first)
    by_dst;
  st.files <- [];
  st.renames <- []

(* ---------- installation ---------- *)

type 'a run_result = { outcome : ('a, unit) result; points : int }

let with_plan plan f =
  let st =
    { plan; counter = Atomic.make 0; crashed = Atomic.make false;
      lock = Mutex.create (); files = []; renames = [] }
  in
  if not (Atomic.compare_and_set active None (Some st)) then
    invalid_arg "Fault.with_plan: a plan is already installed";
  let finish () = Atomic.set active None in
  match f () with
  | v ->
    finish ();
    { outcome = Ok v; points = Atomic.get st.counter }
  | exception Crashed ->
    (* the run has unwound through every Fun.protect; now mutilate the
       tracked files the way the power cut would have *)
    apply_crash st;
    finish ();
    { outcome = Error (); points = Atomic.get st.counter }
  | exception e ->
    finish ();
    raise e
