(** Deterministic, seeded fault injection.

    A {!plan} maps every fault point the instrumented code reaches to
    an {!action}, purely from the point's kind and its global firing
    index — never from wall clock or interleaving — so any failure it
    provokes reproduces from the seed printed with it (the
    [UMRS_TEST_SEED] convention of test/gen.ml). With no plan
    installed, {!fire} is one atomic load: the seam costs nothing in
    production paths.

    Crashes are simulated as power loss, not mere process death. While
    a plan is installed, {!Io} reports every file it opens, fsyncs and
    renames here; when a [Crash] action fires the run is stopped
    (every subsequent {!fire} in any domain raises {!Crashed}) and
    {!with_plan}, once the run has unwound, tears each file's
    un-fsynced tail at a seeded, alignment-respecting byte boundary
    and rolls back a suffix of the renames not pinned by a directory
    fsync. Recovery code then faces a filesystem a real power cut
    could have left behind. *)

exception Crashed
(** Raised by {!fire} at and after a simulated crash. Instrumented
    cleanup code must let it propagate — a dead process runs no
    handlers — except to release in-memory locks. *)

exception Injected of string
(** An injected handler exception ({!action.Exn}), raised by
    {!Io.worker_hook} inside server worker domains. *)

(** Where a fault can strike. File and directory points are reached
    through {!Io}'s tracked file operations; socket points through its
    syscall wrappers and channel hooks; [Worker] inside the server's
    request handler. [Heartbeat_loss] fires in a cluster node's
    membership agent before each heartbeat send (non-[Pass] → that
    beat is silently dropped); [Partition] fires once per
    heartbeat-loop iteration (non-[Pass] → the node skips the whole
    coordinator exchange, as if the link were cut) — enough of either
    in a row and a perfectly healthy node is declared dead, which is
    precisely the false-positive path failover tests need to reach. *)
type point =
  | File_write
  | File_fsync
  | File_close
  | File_rename
  | Dir_fsync
  | Sock_read
  | Sock_write
  | Sock_accept
  | Sock_connect
  | Worker
  | Heartbeat_loss
  | Partition

val point_tag : point -> int
val point_name : point -> string

type action =
  | Pass            (** no fault *)
  | Crash           (** simulated power loss; {!fire} raises {!Crashed} *)
  | Drop_fsync      (** the fsync silently does nothing durable *)
  | Short_write of int  (** first write syscall transfers at most n bytes *)
  | Eintr of int    (** the next n syscalls fail with [EINTR] *)
  | Delay of float  (** sleep this many seconds first *)
  | Reset           (** connection reset / refused, by point kind *)
  | Half_close      (** reads see EOF although the peer is alive *)
  | Exn of string   (** raise {!Injected} inside the handler *)

type plan = {
  label : string;
  seed : int;
  torn_align : int;  (** torn writes land on multiples of this *)
  decide : point -> int -> action;
      (** Must be pure: called concurrently from any domain, keyed on
          (point kind, global firing index). *)
}

val make_plan :
  ?label:string -> ?seed:int -> ?torn_align:int ->
  (point -> int -> action) -> plan

val pass_plan : ?seed:int -> unit -> plan
(** Counts fault points without injecting anything — the measuring run
    a crash-point sweep starts from. *)

val crash_at : ?torn_align:int -> seed:int -> at:int -> unit -> plan
(** Simulated power loss exactly at firing index [at]; the seed drives
    the post-crash tearing and rename rollback. *)

val seeded : ?torn_align:int -> seed:int -> intensity:float -> unit -> plan
(** Each firing independently suffers a fault with probability
    [intensity] (in [0, 1]); the fault drawn depends on the point kind
    — resets, half-closes and delays on socket reads/writes, [EINTR]
    storms on accept, refusals on connect, {!Injected} in workers,
    dropped fsyncs on file/directory syncs, dropped heartbeats and
    skipped coordinator exchanges at the membership points. Never
    [Crash]: a seeded storm degrades a live process rather than
    killing it. *)

val fire : point -> action
(** Called by instrumented code at each fault point. Returns [Pass]
    when no plan is installed (the fast path); raises {!Crashed} when
    the plan decides [Crash] or a crash already happened. *)

val enabled : unit -> bool
val points_fired : unit -> int

(** {1 Running under a plan} *)

type 'a run_result = {
  outcome : ('a, unit) result;  (** [Error ()] means a simulated crash *)
  points : int;                 (** fault points fired during the run *)
}

val with_plan : plan -> (unit -> 'a) -> 'a run_result
(** Install [plan], run [f], uninstall. On a simulated crash the
    post-crash filesystem state is applied before returning
    [Error ()]. Exceptions other than {!Crashed} propagate. Plans do
    not nest; concurrent installation is an [Invalid_argument]. *)

(** {1 Seam internals}

    State reporting used by {!Io}'s tracked file operations. Not for
    application code. *)

type entry = {
  mutable e_path : string;
  e_oc : out_channel;
  mutable e_synced : int;
  mutable e_open : bool;
  mutable e_dead : bool;
}

val track_open : path:string -> out_channel -> entry option
val track_rename : src:string -> dst:string -> unit
(** Performs the rename (always) and records it as rollback-eligible
    while a plan is installed. *)

val commit_renames : dir:string -> unit
(** A directory fsync reached the disk: renames into [dir] can no
    longer be lost. *)
