(* Crash-consistency harness.

   Proves the corpus builder's recovery story by brute force: run a
   checkpointed build once under a counting plan to learn how many
   fault points it passes, then re-run it once per point with a
   simulated power loss exactly there, and after each crash check the
   two invariants the store claims:

   - atomic publication: if the output corpus exists at all, it
     verifies clean (the final rename only ever exposes a complete,
     fsynced file);
   - recoverability: a resume from the surviving checkpoint state
     completes and produces a byte-identical corpus.

   Every run is driven by a seed, so a failing point reproduces from
   the (seed, at) pair the summary carries. *)

module Fault = Umrs_fault.Fault
open Umrs_store

type failure = { f_at : int; f_seed : int; f_detail : string }

type summary = {
  s_p : int;
  s_q : int;
  s_d : int;
  s_domains : int;
  s_points : int;
  s_crashes : int;
  s_seed : int;
  s_failures : failure list;
}

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let remove_if path = try Sys.remove path with Sys_error _ -> ()

let crash_matrix ?(variant = Umrs_core.Canonical.Full) ?(domains = 1)
    ?(checkpoint_every = 1 lsl 14) ?(seed = 0x5EED42) ?(torn_align = 1)
    ?on_progress ~p ~q ~d ~scratch () =
  Checkpoint.init_dir ~dir:scratch;
  let ref_out = Filename.concat scratch "reference.corpus" in
  let out = Filename.concat scratch "out.corpus" in
  let ck = Filename.concat scratch "ck" in
  let build ~resume () =
    Builder.build ~variant ~domains ~checkpoint_dir:ck ~checkpoint_every
      ~resume ~p ~q ~d ~out ()
  in
  let fresh () =
    Checkpoint.init_dir ~dir:ck;
    Checkpoint.clear ~dir:ck;
    remove_if out;
    remove_if (out ^ ".tmp")
  in
  ignore (Builder.build ~variant ~domains ~p ~q ~d ~out:ref_out ());
  let reference = read_file ref_out in
  let failures = ref [] in
  let fail ~at ~seed fmt =
    Printf.ksprintf
      (fun s ->
        failures := { f_at = at; f_seed = seed; f_detail = s } :: !failures)
      fmt
  in
  (* counting run: same plan machinery, no injected faults *)
  fresh ();
  let counted = Fault.with_plan (Fault.pass_plan ~seed ()) (build ~resume:false) in
  let points = counted.Fault.points in
  (match counted.Fault.outcome with
  | Ok _ ->
    if read_file out <> reference then
      fail ~at:(-1) ~seed "counting run output differs from reference build"
  | Error () -> fail ~at:(-1) ~seed "counting run crashed under a pass plan");
  let crashes = ref 0 in
  for at = 0 to points - 1 do
    (match on_progress with Some f -> f ~at ~points | None -> ());
    let run_seed = seed + at in
    fresh ();
    match
      Fault.with_plan
        (Fault.crash_at ~torn_align ~seed:run_seed ~at ())
        (build ~resume:false)
    with
    | exception e ->
      fail ~at ~seed:run_seed "build raised %s instead of the simulated crash"
        (Printexc.to_string e)
    | { Fault.outcome = Ok _; points = ran } ->
      fail ~at ~seed:run_seed
        "crash point %d never fired (run passed only %d points)" at ran
    | { Fault.outcome = Error (); _ } -> (
      incr crashes;
      (* invariant 1: publication is atomic (crash_at drops no fsyncs,
         so a published corpus has its data on disk) *)
      (if Sys.file_exists out then
         match Corpus.verify ~path:out with
         | v when v.Corpus.v_problems <> [] ->
           fail ~at ~seed:run_seed "published corpus corrupt after crash: %s"
             (String.concat "; " v.Corpus.v_problems)
         | _ -> ()
         | exception e ->
           fail ~at ~seed:run_seed "published corpus unreadable: %s"
             (Printexc.to_string e));
      (* invariant 2: resume from whatever survived is byte-identical *)
      match build ~resume:true () with
      | exception e ->
        fail ~at ~seed:run_seed "resume raised: %s" (Printexc.to_string e)
      | _outcome -> (
        if not (Sys.file_exists out) then
          fail ~at ~seed:run_seed "resume produced no corpus"
        else if read_file out <> reference then
          fail ~at ~seed:run_seed "resumed corpus differs from reference bytes"
        else
          match Corpus.verify ~path:out with
          | v when v.Corpus.v_problems <> [] ->
            fail ~at ~seed:run_seed "resumed corpus fails verify: %s"
              (String.concat "; " v.Corpus.v_problems)
          | _ -> ()
          | exception e ->
            fail ~at ~seed:run_seed "resumed corpus unreadable: %s"
              (Printexc.to_string e)))
  done;
  { s_p = p; s_q = q; s_d = d; s_domains = domains; s_points = points;
    s_crashes = !crashes; s_seed = seed; s_failures = List.rev !failures }
