(* Fault-schedule load driver ("storm").

   Runs one live server per level and drives it with resilient clients
   while a seeded fault plan perturbs both sides of every socket and
   the worker pool. The accounting rule is the serving layer's core
   promise under fire: every well-formed request must come back as
   some answer - a reply, a server verdict, or a client-side transport
   error after retries - never silently vanish. The driver classifies
   each call:

   - success:  Ok with a well-shaped payload and no retry/reconnect;
   - degraded: answered, but only after retries/reconnects, or
     answered with a server verdict (Rejected includes requests whose
     worker was killed by an injected handler exception);
   - failed:   transport gave up after retries (or the breaker fast-
     failed). Failures are reported, not fatal - the fatal conditions
     are a hang, a malformed reply, or a dead server afterwards.

   Recovery latency is sampled from degraded calls that needed
   retries: the elapsed time until the answer finally landed. *)

module Fault = Umrs_fault.Fault
module Wire = Umrs_server.Wire
module Server = Umrs_server.Server
module C = Umrs_client

type level = {
  l_intensity : float;
  l_requests : int;
  l_success : int;
  l_degraded : int;
  l_failed : int;
  l_worker_crashes : int;
  l_breaker_opens : int;
  l_breaker_fastfails : int;
  l_recovery_p50 : float;
  l_recovery_p95 : float;
  l_seconds : float;
}

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else
    sorted.(max 0 (min (n - 1)
                     (int_of_float (ceil (p /. 100. *. float_of_int n)) - 1)))

let request ~records i =
  match i mod 7 with
  | 0 -> Wire.Ping i
  | 1 | 2 -> Wire.Nth (i mod records)
  | 3 -> Wire.Range_prefix [||]
  | 4 -> Wire.Cgraph_of (i mod records)
  | 5 -> Wire.Corpus_info
  | _ -> Wire.Sleep_ms 1

let shape_ok req resp =
  match (req, resp) with
  | Wire.Ping n, Wire.R_pong m -> n = m
  | Wire.Corpus_info, Wire.R_header _ -> true
  | Wire.Nth _, Wire.R_matrix _ -> true
  | Wire.Range_prefix _, Wire.R_range _ -> true
  | Wire.Cgraph_of _, Wire.R_graph _ -> true
  | Wire.Sleep_ms _, Wire.R_slept _ -> true
  | _ -> false

let storm_policy =
  { C.Robust.default_policy with
    connect_retries = 5;
    call_retries = 2;
    base_backoff = 0.005;
    max_backoff = 0.05;
    max_total_wait = 2.0;
    breaker_cooldown = 0.05;
    recv_timeout = 1.0 }

let run_level ?(seed = 0x5EED42) ?(requests = 300) ?(conns = 2) ?(workers = 2)
    ?(queue_capacity = 64) ~intensity ~corpus ~addr () =
  let records = (Umrs_store.Corpus.info ~path:corpus).Umrs_store.Corpus.count in
  if records = 0 then Error "storm: empty corpus"
  else
    let cfg =
      { (Server.default_config addr) with
        Server.corpus = Some corpus; workers; queue_capacity }
    in
    match Server.start cfg with
    | Error e -> Error (Printf.sprintf "server start: %s" e)
    | Ok srv ->
      let addr = Server.addr srv in
      let pool =
        Array.init conns (fun i ->
            C.Robust.create ~policy:storm_policy
              ~rng:(Random.State.make [| 0x570A; seed; i |])
              addr)
      in
      let success = ref 0 and degraded = ref 0 and failed = ref 0 in
      let samples = ref [] in
      let drive () =
        for i = 0 to requests - 1 do
          let conn = pool.(i mod conns) in
          let req = request ~records i in
          let before = C.Robust.stats conn in
          let t0 = Unix.gettimeofday () in
          match C.Robust.call conn ~deadline_ms:2000 req with
          | Ok resp ->
            let after = C.Robust.stats conn in
            let retried =
              after.C.Robust.retries > before.C.Robust.retries
              || after.C.Robust.reconnects > before.C.Robust.reconnects
            in
            if not (shape_ok req resp) then incr failed
            else if retried then begin
              incr degraded;
              samples := (Unix.gettimeofday () -. t0) :: !samples
            end
            else incr success
          | Error (C.Refused _ | C.Overloaded | C.Timed_out) -> incr degraded
          | Error (C.Io _ | C.Protocol _) -> incr failed
        done
      in
      let t0 = Unix.gettimeofday () in
      let stormed = Fault.with_plan (Fault.seeded ~seed ~intensity ()) drive in
      let seconds = Unix.gettimeofday () -. t0 in
      let opens, fastfails =
        Array.fold_left
          (fun (o, f) conn ->
            let s = C.Robust.stats conn in
            (o + s.C.Robust.breaker_opens, f + s.C.Robust.breaker_fastfails))
          (0, 0) pool
      in
      Array.iter C.Robust.close pool;
      (* faults are off now: the pool must have been restored and the
         server must answer a plain client first try *)
      let probe =
        match C.connect ~retries:5 addr with
        | Error e -> Error ("post-storm connect: " ^ C.error_to_string e)
        | Ok c -> (
          Fun.protect ~finally:(fun () -> C.close c) @@ fun () ->
          match C.ping c with
          | Error e -> Error ("post-storm ping: " ^ C.error_to_string e)
          | Ok () -> (
            match C.nth c 0 with
            | Error e -> Error ("post-storm nth: " ^ C.error_to_string e)
            | Ok _ -> Ok ()))
      in
      let crashes = Server.worker_crashes srv in
      Server.shutdown srv;
      Server.wait srv;
      match (stormed.Fault.outcome, probe) with
      | Error (), _ -> Error "storm crashed (seeded plans never crash)"
      | _, Error e -> Error e
      | Ok (), Ok () ->
        let sorted = Array.of_list !samples in
        Array.sort compare sorted;
        Ok
          { l_intensity = intensity;
            l_requests = requests;
            l_success = !success;
            l_degraded = !degraded;
            l_failed = !failed;
            l_worker_crashes = crashes;
            l_breaker_opens = opens;
            l_breaker_fastfails = fastfails;
            l_recovery_p50 = percentile sorted 50.;
            l_recovery_p95 = percentile sorted 95.;
            l_seconds = seconds }
