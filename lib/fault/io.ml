(* The pluggable I/O seam.

   Store and server code does its file and socket I/O through this
   module instead of Stdlib/Unix directly. With no fault plan
   installed every operation is the real syscall plus one atomic load;
   with a plan installed, operations consult {!Fault.fire} and the
   tracked-file registry that powers simulated power loss.

   Tracked output files buffer writes and fire [File_write] once per
   flushed chunk rather than once per [output_bytes] call — a corpus
   of n records is a handful of fault points, not n, which keeps an
   exhaustive crash-point sweep tractable. *)

let chunk_bytes = 8192

type out = {
  o_oc : out_channel;
  o_entry : Fault.entry option;
  o_buf : Buffer.t;
  mutable o_closed : bool;
}

let open_out path =
  let oc = open_out_bin path in
  let entry = if Fault.enabled () then Fault.track_open ~path oc else None in
  { o_oc = oc; o_entry = entry; o_buf = Buffer.create 256; o_closed = false }

let flush_buf o =
  if Buffer.length o.o_buf > 0 then begin
    ignore (Fault.fire Fault.File_write);
    Buffer.output_buffer o.o_oc o.o_buf;
    Buffer.clear o.o_buf
  end

let output_bytes o b =
  match o.o_entry with
  | None -> Stdlib.output_bytes o.o_oc b
  | Some _ ->
    Buffer.add_bytes o.o_buf b;
    if Buffer.length o.o_buf >= chunk_bytes then flush_buf o

let output_string o s =
  match o.o_entry with
  | None -> Stdlib.output_string o.o_oc s
  | Some _ ->
    Buffer.add_string o.o_buf s;
    if Buffer.length o.o_buf >= chunk_bytes then flush_buf o

let pos o = pos_out o.o_oc + Buffer.length o.o_buf

let seek o dst =
  flush_buf o;
  Stdlib.flush o.o_oc;
  seek_out o.o_oc dst;
  (* overwriting below the fsync watermark makes that region volatile
     again: the rewrite sits in the page cache like any other dirty
     data *)
  match o.o_entry with
  | Some e when dst < e.e_synced -> e.e_synced <- dst
  | _ -> ()

let fsync o =
  flush_buf o;
  Stdlib.flush o.o_oc;
  match Fault.fire Fault.File_fsync with
  | Fault.Drop_fsync -> ()
  | a ->
    (match a with Fault.Delay s -> Unix.sleepf s | _ -> ());
    let fd = Unix.descr_of_out_channel o.o_oc in
    Unix.fsync fd;
    (match o.o_entry with
    | Some e -> e.e_synced <- (Unix.fstat fd).Unix.st_size
    | None -> ())

let close o =
  flush_buf o;
  ignore (Fault.fire Fault.File_close);
  o.o_closed <- true;
  (match o.o_entry with Some e -> e.e_open <- false | None -> ());
  close_out o.o_oc

let close_noerr o =
  if not o.o_closed then begin
    o.o_closed <- true;
    (match o.o_entry with Some e -> e.e_open <- false | None -> ());
    (try Buffer.output_buffer o.o_oc o.o_buf with Sys_error _ -> ());
    close_out_noerr o.o_oc
  end

let rename ~src ~dst =
  ignore (Fault.fire Fault.File_rename);
  Fault.track_rename ~src ~dst

let fsync_dir dir =
  match Fault.fire Fault.Dir_fsync with
  | Fault.Drop_fsync -> ()
  | a ->
    (match a with Fault.Delay s -> Unix.sleepf s | _ -> ());
    (match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
    | exception Unix.Unix_error _ -> ()
    | fd ->
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          (* some filesystems refuse fsync on directories; the rename
             is then as durable as the platform can make it *)
          try Unix.fsync fd with Unix.Unix_error _ -> ()));
    Fault.commit_renames ~dir

(* ---------- EINTR-hardened raw syscalls ---------- *)

let sleepf seconds =
  let until = Unix.gettimeofday () +. seconds in
  let rec go () =
    let left = until -. Unix.gettimeofday () in
    if left > 0.0 then
      match Unix.sleepf left with
      | () -> go ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  go ()

(* Run [f], retrying on EINTR; the first [injected] attempts fail with
   a synthetic EINTR so storms exercise the same retry path real
   signals do. *)
let with_eintr_budget injected f =
  let left = ref injected in
  let rec go () =
    match
      if !left > 0 then begin
        decr left;
        raise (Unix.Unix_error (Unix.EINTR, "injected", ""))
      end
      else f ()
    with
    | v -> v
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  go ()

let read fd buf ofs len =
  match Fault.fire Fault.Sock_read with
  | Fault.Half_close -> 0
  | Fault.Reset -> raise (Unix.Unix_error (Unix.ECONNRESET, "read", ""))
  | a ->
    (match a with Fault.Delay s -> sleepf s | _ -> ());
    let injected = match a with Fault.Eintr n -> n | _ -> 0 in
    with_eintr_budget injected (fun () -> Unix.read fd buf ofs len)

let write_all fd buf ofs len =
  let a = Fault.fire Fault.Sock_write in
  (match a with
  | Fault.Reset -> raise (Unix.Unix_error (Unix.EPIPE, "write", ""))
  | Fault.Delay s -> sleepf s
  | _ -> ());
  let budget = ref (match a with Fault.Eintr n -> n | _ -> 0) in
  let cap = ref (match a with Fault.Short_write n -> max 1 n | _ -> max_int) in
  let rec go ofs len =
    if len > 0 then begin
      let ask = min len !cap in
      cap := max_int;
      let n =
        with_eintr_budget
          (let b = !budget in
           budget := 0;
           b)
          (fun () -> Unix.write fd buf ofs ask)
      in
      go (ofs + n) (len - n)
    end
  in
  go ofs len

(* One write syscall, for non-blocking descriptors owned by an event
   loop: EAGAIN propagates (the loop re-arms on writability) instead
   of spinning in a retry loop that would stall every other
   connection.  Injected [Short_write n] caps the attempt so the
   partial-write resume path is exercised by storms. *)
let write_once fd buf ofs len =
  let a = Fault.fire Fault.Sock_write in
  (match a with
  | Fault.Reset -> raise (Unix.Unix_error (Unix.EPIPE, "write", ""))
  | Fault.Delay s -> sleepf s
  | _ -> ());
  let injected = match a with Fault.Eintr n -> n | _ -> 0 in
  let ask = match a with Fault.Short_write n -> min len (max 1 n) | _ -> len in
  with_eintr_budget injected (fun () -> Unix.write fd buf ofs ask)

let accept ?(cloexec = false) fd =
  let a = Fault.fire Fault.Sock_accept in
  (match a with Fault.Delay s -> sleepf s | _ -> ());
  let injected = match a with Fault.Eintr n -> n | _ -> 0 in
  with_eintr_budget injected (fun () -> Unix.accept ~cloexec fd)

let connect fd sa =
  (match Fault.fire Fault.Sock_connect with
  | Fault.Reset -> raise (Unix.Unix_error (Unix.ECONNREFUSED, "connect", ""))
  | Fault.Delay s -> sleepf s
  | _ -> ());
  try Unix.connect fd sa
  with Unix.Unix_error (Unix.EINTR, _, _) ->
    (* the kernel continues the attempt asynchronously: wait until the
       socket has a disposition, then read it.  poll(2), not select:
       this fd may be numbered past FD_SETSIZE in a 10k-connection
       client. *)
    let rec wait () =
      if not (Umrs_evloop.wait_writable fd ~timeout_ms:1000) then wait ()
    in
    wait ();
    (match Unix.getsockopt_error fd with
    | None -> ()
    | Some e -> raise (Unix.Unix_error (e, "connect", "")))

(* ---------- hooks for channel-based socket paths ---------- *)

(* OCaml channels already retry EINTR internally, so channel hooks
   only surface faults a channel user can see: delays, peer resets
   (Sys_error, as a failed syscall becomes) and half-closes
   (End_of_file). *)
let socket_hook point =
  match Fault.fire point with
  | Fault.Pass -> ()
  | Fault.Delay s -> sleepf s
  | Fault.Half_close -> raise End_of_file
  | Fault.Reset -> raise (Sys_error "injected: connection reset by peer")
  | Fault.Exn m -> raise (Fault.Injected m)
  | Fault.Eintr _ | Fault.Crash | Fault.Drop_fsync | Fault.Short_write _ -> ()

let on_sock_read () = socket_hook Fault.Sock_read
let on_sock_write () = socket_hook Fault.Sock_write

let worker_hook () =
  match Fault.fire Fault.Worker with
  | Fault.Exn m -> raise (Fault.Injected m)
  | Fault.Delay s -> sleepf s
  | _ -> ()
