(** Client for the {!Umrs_server} corpus/evaluation service.

    Speaks {!Umrs_server.Wire} over TCP or a Unix-domain socket. The
    design mirrors {!Umrs_store.Query}: connecting and every call
    return [result] with a typed error — socket trouble ([Io]), bytes
    that are not the protocol ([Protocol]), and the server's own
    verdicts ([Refused], [Overloaded], [Timed_out]) are data the caller
    dispatches on, never exceptions.

    {2 Pipelining}

    [send] writes a request and returns a ticket without waiting;
    [recv] blocks for that ticket's response. Many requests may be in
    flight at once and the server completes them in {e any} order (its
    worker pool is concurrent), so responses are matched by request id:
    [recv] stashes whatever else arrives until its own id shows up.
    [call] is [send] + [recv] for the one-at-a-time case.

    A handle is not thread-safe — pipelining gives one thread
    concurrency against the server; use one handle per thread for
    client-side parallelism. *)

type t

type error =
  | Io of string        (** connect/read/write failed at the socket *)
  | Protocol of string  (** bad hello, undecodable frame, or a
                            response of the wrong shape *)
  | Refused of string   (** server rejected a well-formed request
                            (out of range, unknown scheme, no corpus) *)
  | Overloaded          (** shed by the server's bounded queue *)
  | Timed_out           (** the request's deadline expired server-side *)

val pp_error : Format.formatter -> error -> unit
val error_to_string : error -> string

val connect :
  ?retries:int -> ?backoff:float -> ?max_backoff:float ->
  ?max_total_wait:float -> ?rng:Random.State.t -> ?recv_timeout:float ->
  Umrs_server.Wire.addr -> (t, error) result
(** Connect and exchange hellos. A refused/unreachable address is
    retried [retries] more times (default 0) with {e full-jitter}
    exponential backoff: the k-th sleep is uniform on
    [\[0, min(max_backoff, backoff * 2{^k})\]] (defaults 0.05 base,
    2.0 cap), so a fleet of retrying clients spreads out instead of
    thundering back in lockstep. Cumulative sleep never exceeds
    [max_total_wait] seconds (default 30) regardless of [retries].
    [rng] makes the jitter deterministic for tests. [recv_timeout] > 0
    (seconds, default off) sets [SO_RCVTIMEO] so a later [recv]
    against a hung server surfaces as [Io] instead of blocking
    forever. *)

val close : t -> unit
(** Close the socket. Idempotent; pending tickets are lost. *)

(** {1 Pipelined interface} *)

type ticket

val send :
  t -> ?deadline_ms:int -> Umrs_server.Wire.request -> (ticket, error) result
(** Write one request frame. [deadline_ms] (default 0 = none) is
    enforced by the server, wall-clock from when it decodes the
    frame. *)

val recv : t -> ticket -> (Umrs_server.Wire.response, error) result
(** Block until this ticket's response arrives, stashing out-of-order
    arrivals for their own [recv]. Each ticket may be received once. *)

val call :
  t -> ?deadline_ms:int -> Umrs_server.Wire.request
  -> (Umrs_server.Wire.response, error) result

val call_pipelined :
  t -> ?deadline_ms:int -> Umrs_server.Wire.request list
  -> (Umrs_server.Wire.response, error) result list
(** Send the whole batch back-to-back — the frames coalesce into one
    channel flush — then receive every response, returned in request
    order whatever order the server completed them in. One result per
    request: a send failure occupies that request's slot and the rest
    of the batch is still attempted. Equivalent to [List.map (call t)]
    but with the server's full pipeline depth instead of one
    round-trip per request. *)

(** {1 Typed calls}

    One per request constructor; each checks the response shape and
    reports a mismatch as [Protocol]. *)

val ping : t -> (unit, error) result
(** Round-trips a fresh nonce and verifies the echo. *)

val stats : t -> (Umrs_server.Wire.server_stats, error) result
val corpus_info : t -> (Umrs_store.Corpus.header, error) result
val nth : t -> int -> (Umrs_core.Matrix.t, error) result
val mem : t -> Umrs_core.Matrix.t -> (bool, error) result
val rank : t -> Umrs_core.Matrix.t -> (int, error) result
val range_prefix : t -> int array -> (int * int, error) result
val cgraph : t -> int -> (Umrs_core.Cgraph.t, error) result

val evaluate :
  t -> ?deadline_ms:int -> scheme:string -> graph_name:string
  -> Umrs_graph.Graph.t
  -> (Umrs_routing.Scheme.evaluation, error) result

val sleep_ms : t -> ?deadline_ms:int -> int -> (int, error) result

val shard_map : t -> (Umrs_server.Wire.shard_map, error) result
(** The cluster topology this node serves under; [Refused] when the
    server is not part of a cluster. *)

val cluster_status :
  t ->
  (int * bool * Umrs_server.Wire.member_info list, error) result
(** Coordinator membership snapshot: [(topology version, a map is
    published, members)]. [Refused] on a non-coordinator. *)

val reshard : t -> Umrs_server.Wire.reshard_op -> (string, error) result
(** Ask a coordinator to start an online reshard; the returned string
    describes the operation it began. [Refused] while another reshard
    is in flight or when no node can take the new range. *)

(** {1 Idempotency}

    Every read-only request — [Ping], [Stats], [Corpus_info], [Nth],
    [Mem], [Rank], [Range_prefix], [Cgraph_of] — is idempotent:
    executing it twice returns the same answer and changes nothing, so
    it is safe to resend when a connection dies mid-call and the
    client cannot know whether the server executed it. [Evaluate] is
    also idempotent (a pure function of its graph, memoized
    server-side). The membership control plane ([Join], [Leave],
    [Heartbeat], [Handoff_done], [Cluster_status]) is upsert-shaped
    and therefore idempotent too. [Sleep_ms] is {e not}: each
    execution occupies a worker for the full duration, so a blind
    resend doubles the resource cost; neither is [Reshard], whose
    blind resend could start a second topology change. {!Robust}
    enforces exactly this split. *)

val idempotent : Umrs_server.Wire.request -> bool

(** {1 Resilient calls}

    A {!Robust.conn} wraps reconnection, retry, and a circuit breaker
    around {!call}:

    - failures {e before} a request reaches the wire are retried for
      any request; failures {e after} only for {!idempotent} ones;
    - retries sleep with the same full-jitter backoff as {!connect};
    - after [breaker_threshold] consecutive transport failures the
      breaker opens and calls fail fast ([Io "circuit breaker open"])
      for [breaker_cooldown] seconds, then one half-open probe decides
      between closing it and re-opening.

    Server verdicts ([Refused]/[Overloaded]/[Timed_out]) are answers,
    not failures: they reset the breaker and are returned as-is —
    backing off on [Overloaded] is the caller's policy decision. Like
    {!t}, a [conn] is not thread-safe. *)

module Robust : sig
  type policy = {
    connect_retries : int;
    call_retries : int;
    base_backoff : float;      (** seconds; full-jitter base *)
    max_backoff : float;       (** per-sleep ceiling, seconds *)
    max_total_wait : float;    (** cumulative connect-sleep cap *)
    breaker_threshold : int;   (** consecutive failures to open *)
    breaker_cooldown : float;  (** open duration, seconds *)
    recv_timeout : float;      (** [SO_RCVTIMEO] per connection *)
  }

  val default_policy : policy
  (** 3 connect retries, 2 call retries, 0.02 s base / 0.5 s cap
      backoff, 10 s total wait, breaker 5 failures / 0.25 s cooldown,
      10 s receive timeout. *)

  type conn

  val create : ?policy:policy -> ?rng:Random.State.t -> Umrs_server.Wire.addr -> conn
  (** No I/O happens until the first {!call} (connection is lazy). *)

  val call :
    conn -> ?deadline_ms:int -> Umrs_server.Wire.request
    -> (Umrs_server.Wire.response, error) result

  val call_many :
    conn -> ?deadline_ms:int -> Umrs_server.Wire.request list
    -> (Umrs_server.Wire.response, error) result list
  (** {!call_pipelined} through the robust connection: the batch
      coalesces into one flush, results come back in request order, one
      per request. Because the whole batch is on the wire before any
      response is read, a connection loss mid-batch re-drives only the
      {!idempotent} failed slots (each through {!call}'s full
      reconnect/backoff policy); non-idempotent slots keep their
      transport error. Breaker accounting counts every slot. *)

  val close : conn -> unit

  type call_stats = {
    calls : int;
    retries : int;            (** resent or re-attempted calls *)
    reconnects : int;         (** connections re-established after loss *)
    breaker_opens : int;
    breaker_fastfails : int;  (** calls refused while the breaker was open *)
  }

  val stats : conn -> call_stats
end
