(** Client for the {!Umrs_server} corpus/evaluation service.

    Speaks {!Umrs_server.Wire} over TCP or a Unix-domain socket. The
    design mirrors {!Umrs_store.Query}: connecting and every call
    return [result] with a typed error — socket trouble ([Io]), bytes
    that are not the protocol ([Protocol]), and the server's own
    verdicts ([Refused], [Overloaded], [Timed_out]) are data the caller
    dispatches on, never exceptions.

    {2 Pipelining}

    [send] writes a request and returns a ticket without waiting;
    [recv] blocks for that ticket's response. Many requests may be in
    flight at once and the server completes them in {e any} order (its
    worker pool is concurrent), so responses are matched by request id:
    [recv] stashes whatever else arrives until its own id shows up.
    [call] is [send] + [recv] for the one-at-a-time case.

    A handle is not thread-safe — pipelining gives one thread
    concurrency against the server; use one handle per thread for
    client-side parallelism. *)

type t

type error =
  | Io of string        (** connect/read/write failed at the socket *)
  | Protocol of string  (** bad hello, undecodable frame, or a
                            response of the wrong shape *)
  | Refused of string   (** server rejected a well-formed request
                            (out of range, unknown scheme, no corpus) *)
  | Overloaded          (** shed by the server's bounded queue *)
  | Timed_out           (** the request's deadline expired server-side *)

val pp_error : Format.formatter -> error -> unit
val error_to_string : error -> string

val connect :
  ?retries:int -> ?backoff:float -> Umrs_server.Wire.addr -> (t, error) result
(** Connect and exchange hellos. A refused/unreachable address is
    retried [retries] more times (default 0), sleeping [backoff]
    seconds (default 0.05) before the first retry and doubling each
    attempt — enough to ride out a server that is still binding. *)

val close : t -> unit
(** Close the socket. Idempotent; pending tickets are lost. *)

(** {1 Pipelined interface} *)

type ticket

val send :
  t -> ?deadline_ms:int -> Umrs_server.Wire.request -> (ticket, error) result
(** Write one request frame. [deadline_ms] (default 0 = none) is
    enforced by the server, wall-clock from when it decodes the
    frame. *)

val recv : t -> ticket -> (Umrs_server.Wire.response, error) result
(** Block until this ticket's response arrives, stashing out-of-order
    arrivals for their own [recv]. Each ticket may be received once. *)

val call :
  t -> ?deadline_ms:int -> Umrs_server.Wire.request
  -> (Umrs_server.Wire.response, error) result

(** {1 Typed calls}

    One per request constructor; each checks the response shape and
    reports a mismatch as [Protocol]. *)

val ping : t -> (unit, error) result
(** Round-trips a fresh nonce and verifies the echo. *)

val stats : t -> (Umrs_server.Wire.server_stats, error) result
val corpus_info : t -> (Umrs_store.Corpus.header, error) result
val nth : t -> int -> (Umrs_core.Matrix.t, error) result
val mem : t -> Umrs_core.Matrix.t -> (bool, error) result
val rank : t -> Umrs_core.Matrix.t -> (int, error) result
val range_prefix : t -> int array -> (int * int, error) result
val cgraph : t -> int -> (Umrs_core.Cgraph.t, error) result

val evaluate :
  t -> ?deadline_ms:int -> scheme:string -> graph_name:string
  -> Umrs_graph.Graph.t
  -> (Umrs_routing.Scheme.evaluation, error) result

val sleep_ms : t -> ?deadline_ms:int -> int -> (int, error) result
