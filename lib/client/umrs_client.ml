module Wire = Umrs_server.Wire

type error =
  | Io of string
  | Protocol of string
  | Refused of string
  | Overloaded
  | Timed_out

let pp_error ppf = function
  | Io m -> Format.fprintf ppf "io: %s" m
  | Protocol m -> Format.fprintf ppf "protocol: %s" m
  | Refused m -> Format.fprintf ppf "refused: %s" m
  | Overloaded -> Format.pp_print_string ppf "overloaded"
  | Timed_out -> Format.pp_print_string ppf "timed out"

let error_to_string e = Format.asprintf "%a" pp_error e

type t = {
  fd : Unix.file_descr;
  ic : in_channel;
  oc : out_channel;
  mutable next_id : int;
  (* responses that arrived while [recv] was waiting for another id *)
  stash : (int, Wire.outcome) Hashtbl.t;
  mutable is_closed : bool;
  nonce : int ref;
}

type ticket = int

let close t =
  if not t.is_closed then begin
    t.is_closed <- true;
    Hashtbl.reset t.stash;
    (* closes [fd]; [ic] shares it *)
    close_out_noerr t.oc
  end

(* Every socket interaction funnels through this: OCaml's channel and
   Unix layers raise three different exception families for the same
   "peer is gone" condition and callers should see exactly one. *)
let io_guard f =
  try Ok (f ()) with
  | End_of_file -> Error (Io "connection closed by server")
  | Sys_error m -> Error (Io m)
  | Sys_blocked_io ->
    (* channel read hit [SO_RCVTIMEO] (see [connect]'s [recv_timeout]) *)
    Error (Io "receive timed out")
  | Unix.Unix_error (e, fn, _) ->
    Error (Io (Printf.sprintf "%s: %s" fn (Unix.error_message e)))

let sockaddr_of = function
  | Wire.Unix_sock path -> Ok (Unix.PF_UNIX, Unix.ADDR_UNIX path)
  | Wire.Tcp (host, port) -> (
    match
      try Ok (Unix.inet_addr_of_string host)
      with Failure _ -> (
        match (Unix.gethostbyname host).Unix.h_addr_list with
        | [||] -> Error (Io (Printf.sprintf "no address for host %S" host))
        | a -> Ok a.(0)
        | exception Not_found ->
          Error (Io (Printf.sprintf "unknown host %S" host)))
    with
    | Error _ as e -> e
    | Ok inet -> Ok (Unix.PF_INET, Unix.ADDR_INET (inet, port)))

let handshake fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  output_bytes oc (Wire.hello ());
  flush oc;
  let b = Bytes.create Wire.hello_bytes in
  really_input ic b 0 Wire.hello_bytes;
  match Wire.check_hello b with
  | Ok () ->
    Ok
      { fd; ic; oc; next_id = 0; stash = Hashtbl.create 8; is_closed = false;
        nonce = ref 0 }
  | Error `Bad_magic -> Error (Protocol "server sent a bad hello magic")
  | Error (`Bad_version v) ->
    Error
      (Protocol
         (Printf.sprintf "server speaks protocol version %d, expected %d" v
            Wire.protocol_version))

(* best-effort: a missing receive timeout only costs hang protection *)
let set_rcvtimeo fd seconds =
  try Unix.setsockopt_float fd Unix.SO_RCVTIMEO seconds
  with Unix.Unix_error _ | Invalid_argument _ -> ()

let connect ?(retries = 0) ?(backoff = 0.05) ?(max_backoff = 2.0)
    ?(max_total_wait = 30.0) ?rng ?(recv_timeout = 0.0) addr =
  match sockaddr_of addr with
  | Error _ as e -> e
  | Ok (pf, sa) ->
    let rng =
      match rng with Some r -> r | None -> Random.State.make_self_init ()
    in
    let attempt () =
      let fd = Unix.socket pf Unix.SOCK_STREAM 0 in
      match
        io_guard (fun () ->
            Umrs_fault.Io.connect fd sa;
            if recv_timeout > 0.0 then set_rcvtimeo fd recv_timeout;
            handshake fd)
      with
      | Ok (Ok _ as ok) -> ok
      | Ok (Error _ as e) | (Error _ as e) ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        e
    in
    (* Full jitter: each sleep is uniform on [0, min(max_backoff,
       backoff * 2^k)]. Retrying clients therefore spread out instead
       of thundering back in lockstep, and [max_total_wait] bounds the
       cumulative sleep whatever the retry count. *)
    let rec go k left slept =
      match attempt () with
      | Ok _ as ok -> ok
      (* a hello mismatch will not improve with patience *)
      | Error (Protocol _) as e -> e
      | Error _ as e ->
        if left <= 0 || slept >= max_total_wait then e
        else begin
          let ceiling = min max_backoff (backoff *. (2.0 ** float_of_int k)) in
          let delay =
            min (Random.State.float rng (max 1e-9 ceiling))
              (max_total_wait -. slept)
          in
          Umrs_fault.Io.sleepf delay;
          go (k + 1) (left - 1) (slept +. delay)
        end
    in
    go 0 (max 0 retries) 0.0

let send_gen t ~flush ?(deadline_ms = 0) req =
  if t.is_closed then Error (Io "client handle is closed")
  else begin
    let id = t.next_id in
    t.next_id <- (t.next_id + 1) land 0xFFFFFFFF;
    match
      io_guard (fun () ->
          Wire.write_frame ~flush t.oc (Wire.encode_request ~id ~deadline_ms req))
    with
    | Ok () -> Ok id
    | Error _ as e -> e
  end

let send t ?deadline_ms req = send_gen t ~flush:true ?deadline_ms req

let outcome_to_result = function
  | Wire.Reply r -> Ok r
  | Wire.Rejected m -> Error (Refused m)
  | Wire.Overloaded -> Error Overloaded
  | Wire.Timed_out -> Error Timed_out

let recv t ticket =
  if t.is_closed then Error (Io "client handle is closed")
  else
    match Hashtbl.find_opt t.stash ticket with
    | Some outcome ->
      Hashtbl.remove t.stash ticket;
      outcome_to_result outcome
    | None ->
      let rec read_until () =
        match io_guard (fun () -> Wire.read_frame t.ic) with
        | Error _ as e -> e
        | Ok None -> Error (Io "connection closed by server")
        | Ok (Some payload) -> (
          match Wire.decode_outcome payload with
          | exception Invalid_argument m -> Error (Protocol m)
          | id, outcome ->
            if id = ticket then outcome_to_result outcome
            else begin
              Hashtbl.replace t.stash id outcome;
              read_until ()
            end)
      in
      read_until ()

let call t ?deadline_ms req =
  match send t ?deadline_ms req with
  | Error _ as e -> e
  | Ok ticket -> recv t ticket

(* One flush for the whole batch: the frames buffer into the channel,
   so a pipeline of n requests costs one write out and lets the server
   keep every worker busy instead of idling a round-trip per request.
   Responses may complete out of order server-side; [recv]'s stash
   re-sequences them. *)
let call_pipelined t ?deadline_ms reqs =
  let tickets =
    List.map (fun req -> send_gen t ~flush:false ?deadline_ms req) reqs
  in
  (match io_guard (fun () -> flush t.oc) with
  | Ok () -> ()
  | Error _ -> () (* surfaces as an Io error on the recv below *));
  List.map
    (function
      | Error _ as e -> e
      | Ok ticket -> recv t ticket)
    tickets

(* ---------- typed calls ---------- *)

let shape what = Error (Protocol ("response is not " ^ what))

let ping t =
  incr t.nonce;
  let n = !(t.nonce) land 0xFFFFFFFF in
  match call t (Wire.Ping n) with
  | Ok (Wire.R_pong m) ->
    if m = n then Ok ()
    else Error (Protocol (Printf.sprintf "pong nonce %d, sent %d" m n))
  | Ok _ -> shape "a pong"
  | Error _ as e -> e

let stats t =
  match call t Wire.Stats with
  | Ok (Wire.R_stats s) -> Ok s
  | Ok _ -> shape "stats"
  | Error _ as e -> e

let corpus_info t =
  match call t Wire.Corpus_info with
  | Ok (Wire.R_header h) -> Ok h
  | Ok _ -> shape "a corpus header"
  | Error _ as e -> e

let nth t i =
  match call t (Wire.Nth i) with
  | Ok (Wire.R_matrix m) -> Ok m
  | Ok _ -> shape "a matrix"
  | Error _ as e -> e

let mem t m =
  match call t (Wire.Mem m) with
  | Ok (Wire.R_found b) -> Ok b
  | Ok _ -> shape "a membership bit"
  | Error _ as e -> e

let rank t m =
  match call t (Wire.Rank m) with
  | Ok (Wire.R_rank r) -> Ok r
  | Ok _ -> shape "a rank"
  | Error _ as e -> e

let range_prefix t prefix =
  match call t (Wire.Range_prefix prefix) with
  | Ok (Wire.R_range (lo, hi)) -> Ok (lo, hi)
  | Ok (Wire.R_slice { sl_lo; sl_hi; _ }) ->
    (* a sharded node stamps its slice; a direct single-server caller
       has no epoch to compare against, so the stamp is dropped *)
    Ok (sl_lo, sl_hi)
  | Ok _ -> shape "a range"
  | Error _ as e -> e

let cgraph t i =
  match call t (Wire.Cgraph_of i) with
  | Ok (Wire.R_graph g) -> Ok g
  | Ok _ -> shape "a constraint graph"
  | Error _ as e -> e

let evaluate t ?deadline_ms ~scheme ~graph_name graph =
  match call t ?deadline_ms (Wire.Evaluate { scheme; graph_name; graph }) with
  | Ok (Wire.R_evaluation e) -> Ok e
  | Ok _ -> shape "an evaluation"
  | Error _ as e -> e

let sleep_ms t ?deadline_ms ms =
  match call t ?deadline_ms (Wire.Sleep_ms ms) with
  | Ok (Wire.R_slept n) -> Ok n
  | Ok _ -> shape "a sleep acknowledgement"
  | Error _ as e -> e

let shard_map t =
  match call t Wire.Get_shard_map with
  | Ok (Wire.R_shard_map sm) -> Ok sm
  | Ok _ -> shape "a shard map"
  | Error _ as e -> e

let cluster_status t =
  match call t Wire.Cluster_status with
  | Ok (Wire.R_status { cs_version; cs_published; cs_members }) ->
    Ok (cs_version, cs_published, cs_members)
  | Ok _ -> shape "a cluster status"
  | Error _ as e -> e

let reshard t op =
  match call t (Wire.Reshard op) with
  | Ok (Wire.R_accepted msg) -> Ok msg
  | Ok _ -> shape "a reshard acknowledgement"
  | Error _ as e -> e

(* ---------- resilience ---------- *)

let idempotent = function
  | Wire.Ping _ | Wire.Stats | Wire.Corpus_info | Wire.Nth _ | Wire.Mem _
  | Wire.Rank _ | Wire.Range_prefix _ | Wire.Cgraph_of _ | Wire.Evaluate _
  | Wire.Get_shard_map ->
    true
  (* The membership control plane is upsert-shaped by design: a Join
     re-registers the same member, a repeated Heartbeat or
     Handoff_done only refreshes state the first delivery set, a
     doubled Leave finds nothing to remove. Reshard is the exception —
     retrying one could start a second topology change. *)
  | Wire.Join _ | Wire.Leave _ | Wire.Heartbeat _ | Wire.Handoff_done _
  | Wire.Cluster_status ->
    true
  | Wire.Sleep_ms _ | Wire.Reshard _ -> false

module Robust = struct
  type policy = {
    connect_retries : int;
    call_retries : int;
    base_backoff : float;
    max_backoff : float;
    max_total_wait : float;
    breaker_threshold : int;
    breaker_cooldown : float;
    recv_timeout : float;
  }

  let default_policy =
    { connect_retries = 3; call_retries = 2; base_backoff = 0.02;
      max_backoff = 0.5; max_total_wait = 10.0; breaker_threshold = 5;
      breaker_cooldown = 0.25; recv_timeout = 10.0 }

  type breaker = Closed | Open of float | Half_open

  type counters = {
    mutable k_calls : int;
    mutable k_retries : int;
    mutable k_reconnects : int;
    mutable k_breaker_opens : int;
    mutable k_breaker_fastfails : int;
  }

  type call_stats = {
    calls : int;
    retries : int;
    reconnects : int;
    breaker_opens : int;
    breaker_fastfails : int;
  }

  type conn = {
    r_addr : Wire.addr;
    r_policy : policy;
    r_rng : Random.State.t;
    mutable r_handle : t option;
    mutable r_breaker : breaker;
    mutable r_failures : int;  (* consecutive *)
    mutable r_ever_connected : bool;
    r_k : counters;
  }

  let create ?(policy = default_policy) ?rng addr =
    let rng =
      match rng with Some r -> r | None -> Random.State.make_self_init ()
    in
    { r_addr = addr; r_policy = policy; r_rng = rng; r_handle = None;
      r_breaker = Closed; r_failures = 0; r_ever_connected = false;
      r_k = { k_calls = 0; k_retries = 0; k_reconnects = 0;
              k_breaker_opens = 0; k_breaker_fastfails = 0 } }

  let stats c =
    { calls = c.r_k.k_calls; retries = c.r_k.k_retries;
      reconnects = c.r_k.k_reconnects;
      breaker_opens = c.r_k.k_breaker_opens;
      breaker_fastfails = c.r_k.k_breaker_fastfails }

  let drop_handle c =
    match c.r_handle with
    | Some h ->
      close h;
      c.r_handle <- None
    | None -> ()

  let close c = drop_handle c

  let note_success c =
    c.r_failures <- 0;
    c.r_breaker <- Closed

  let note_failure c =
    c.r_failures <- c.r_failures + 1;
    if c.r_failures >= c.r_policy.breaker_threshold then begin
      (match c.r_breaker with
      | Open _ -> ()
      | Closed | Half_open -> c.r_k.k_breaker_opens <- c.r_k.k_breaker_opens + 1);
      c.r_breaker <- Open (Unix.gettimeofday () +. c.r_policy.breaker_cooldown)
    end

  let ensure_handle c =
    match c.r_handle with
    | Some h -> Ok h
    | None -> (
      if c.r_ever_connected then c.r_k.k_reconnects <- c.r_k.k_reconnects + 1;
      match
        connect ~retries:c.r_policy.connect_retries
          ~backoff:c.r_policy.base_backoff ~max_backoff:c.r_policy.max_backoff
          ~max_total_wait:c.r_policy.max_total_wait ~rng:c.r_rng
          ~recv_timeout:c.r_policy.recv_timeout c.r_addr
      with
      | Ok h ->
        c.r_ever_connected <- true;
        c.r_handle <- Some h;
        Ok h
      | Error _ as e -> e)

  let backoff_sleep c k =
    let ceiling =
      min c.r_policy.max_backoff
        (c.r_policy.base_backoff *. (2.0 ** float_of_int k))
    in
    Umrs_fault.Io.sleepf (Random.State.float c.r_rng (max 1e-9 ceiling))

  let call c ?deadline_ms req =
    c.r_k.k_calls <- c.r_k.k_calls + 1;
    match c.r_breaker with
    | Open until when Unix.gettimeofday () < until ->
      c.r_k.k_breaker_fastfails <- c.r_k.k_breaker_fastfails + 1;
      Error (Io "circuit breaker open")
    | b ->
      (match b with Open _ -> c.r_breaker <- Half_open | _ -> ());
      (* A failure before the request hit the wire is retryable for any
         request; after that, only idempotent ones may be resent —
         retrying a non-idempotent request could execute it twice. *)
      let rec go k =
        let fail ~sent e =
          note_failure c;
          let retryable = ((not sent) || idempotent req)
                          && k < c.r_policy.call_retries in
          match c.r_breaker with
          | Open _ -> e
          | _ ->
            if retryable then begin
              c.r_k.k_retries <- c.r_k.k_retries + 1;
              backoff_sleep c k;
              go (k + 1)
            end
            else e
        in
        match ensure_handle c with
        | Error e -> fail ~sent:false (Error e)
        | Ok h -> (
          match send h ?deadline_ms req with
          | Error e ->
            (* the frame may have partially left the machine; be
               conservative and treat the request as possibly sent *)
            drop_handle c;
            fail ~sent:true (Error e)
          | Ok ticket -> (
            match recv h ticket with
            | Ok r ->
              note_success c;
              Ok r
            | Error ((Refused _ | Overloaded | Timed_out) as e) ->
              (* the server answered: the path is healthy, the verdict
                 is the caller's to handle *)
              note_success c;
              Error e
            | Error (Protocol _ as e) ->
              (* a protocol violation is a bug, not weather: drop the
                 connection but do not retry into it *)
              drop_handle c;
              note_failure c;
              Error e
            | Error (Io _ as e) ->
              drop_handle c;
              fail ~sent:true (Error e)))
      in
      go 0

  (* Pipelined batch on the underlying handle: one flush for the whole
     list, responses re-sequenced by ticket (the cluster client's
     per-shard transport). The whole batch is sent before any response
     is read, so when the connection dies mid-batch every request must
     be assumed to have hit the wire: failed slots are re-driven
     individually through [call] — same reconnect/backoff/breaker
     treatment — but only when idempotent. *)
  let call_many c ?deadline_ms reqs =
    match reqs with
    | [] -> []
    | _ -> (
      let n = List.length reqs in
      match c.r_breaker with
      | Open until when Unix.gettimeofday () < until ->
        c.r_k.k_breaker_fastfails <- c.r_k.k_breaker_fastfails + n;
        List.map (fun _ -> Error (Io "circuit breaker open")) reqs
      | b -> (
        (match b with Open _ -> c.r_breaker <- Half_open | _ -> ());
        c.r_k.k_calls <- c.r_k.k_calls + n;
        match ensure_handle c with
        | Error _ ->
          (* nothing was sent: every slot may go through [call]'s full
             retry policy, idempotent or not *)
          note_failure c;
          List.map (fun req -> call c ?deadline_ms req) reqs
        | Ok h ->
          let results = call_pipelined h ?deadline_ms reqs in
          let transport_failure =
            List.exists
              (function Error (Io _ | Protocol _) -> true | _ -> false)
              results
          in
          if transport_failure then begin
            drop_handle c;
            note_failure c
          end
          else note_success c;
          List.map2
            (fun req r ->
              match r with
              | Ok _ | Error (Refused _ | Overloaded | Timed_out) -> r
              | Error (Io _ | Protocol _) ->
                if idempotent req then begin
                  c.r_k.k_retries <- c.r_k.k_retries + 1;
                  call c ?deadline_ms req
                end
                else r)
            reqs results))
end
