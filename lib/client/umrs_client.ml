module Wire = Umrs_server.Wire

type error =
  | Io of string
  | Protocol of string
  | Refused of string
  | Overloaded
  | Timed_out

let pp_error ppf = function
  | Io m -> Format.fprintf ppf "io: %s" m
  | Protocol m -> Format.fprintf ppf "protocol: %s" m
  | Refused m -> Format.fprintf ppf "refused: %s" m
  | Overloaded -> Format.pp_print_string ppf "overloaded"
  | Timed_out -> Format.pp_print_string ppf "timed out"

let error_to_string e = Format.asprintf "%a" pp_error e

type t = {
  fd : Unix.file_descr;
  ic : in_channel;
  oc : out_channel;
  mutable next_id : int;
  (* responses that arrived while [recv] was waiting for another id *)
  stash : (int, Wire.outcome) Hashtbl.t;
  mutable is_closed : bool;
  nonce : int ref;
}

type ticket = int

let close t =
  if not t.is_closed then begin
    t.is_closed <- true;
    Hashtbl.reset t.stash;
    (* closes [fd]; [ic] shares it *)
    close_out_noerr t.oc
  end

(* Every socket interaction funnels through this: OCaml's channel and
   Unix layers raise three different exception families for the same
   "peer is gone" condition and callers should see exactly one. *)
let io_guard f =
  try Ok (f ()) with
  | End_of_file -> Error (Io "connection closed by server")
  | Sys_error m -> Error (Io m)
  | Unix.Unix_error (e, fn, _) ->
    Error (Io (Printf.sprintf "%s: %s" fn (Unix.error_message e)))

let sockaddr_of = function
  | Wire.Unix_sock path -> Ok (Unix.PF_UNIX, Unix.ADDR_UNIX path)
  | Wire.Tcp (host, port) -> (
    match
      try Ok (Unix.inet_addr_of_string host)
      with Failure _ -> (
        match (Unix.gethostbyname host).Unix.h_addr_list with
        | [||] -> Error (Io (Printf.sprintf "no address for host %S" host))
        | a -> Ok a.(0)
        | exception Not_found ->
          Error (Io (Printf.sprintf "unknown host %S" host)))
    with
    | Error _ as e -> e
    | Ok inet -> Ok (Unix.PF_INET, Unix.ADDR_INET (inet, port)))

let handshake fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  output_bytes oc (Wire.hello ());
  flush oc;
  let b = Bytes.create Wire.hello_bytes in
  really_input ic b 0 Wire.hello_bytes;
  match Wire.check_hello b with
  | Ok () ->
    Ok
      { fd; ic; oc; next_id = 0; stash = Hashtbl.create 8; is_closed = false;
        nonce = ref 0 }
  | Error `Bad_magic -> Error (Protocol "server sent a bad hello magic")
  | Error (`Bad_version v) ->
    Error
      (Protocol
         (Printf.sprintf "server speaks protocol version %d, expected %d" v
            Wire.protocol_version))

let connect ?(retries = 0) ?(backoff = 0.05) addr =
  match sockaddr_of addr with
  | Error _ as e -> e
  | Ok (pf, sa) ->
    let attempt () =
      let fd = Unix.socket pf Unix.SOCK_STREAM 0 in
      match
        io_guard (fun () ->
            Unix.connect fd sa;
            handshake fd)
      with
      | Ok (Ok _ as ok) -> ok
      | Ok (Error _ as e) | (Error _ as e) ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        e
    in
    let rec go left delay =
      match attempt () with
      | Ok _ as ok -> ok
      (* a hello mismatch will not improve with patience *)
      | Error (Protocol _) as e -> e
      | Error _ as e ->
        if left <= 0 then e
        else begin
          Unix.sleepf delay;
          go (left - 1) (delay *. 2.0)
        end
    in
    go (max 0 retries) backoff

let send t ?(deadline_ms = 0) req =
  if t.is_closed then Error (Io "client handle is closed")
  else begin
    let id = t.next_id in
    t.next_id <- (t.next_id + 1) land 0xFFFFFFFF;
    match
      io_guard (fun () ->
          Wire.write_frame t.oc (Wire.encode_request ~id ~deadline_ms req))
    with
    | Ok () -> Ok id
    | Error _ as e -> e
  end

let outcome_to_result = function
  | Wire.Reply r -> Ok r
  | Wire.Rejected m -> Error (Refused m)
  | Wire.Overloaded -> Error Overloaded
  | Wire.Timed_out -> Error Timed_out

let recv t ticket =
  if t.is_closed then Error (Io "client handle is closed")
  else
    match Hashtbl.find_opt t.stash ticket with
    | Some outcome ->
      Hashtbl.remove t.stash ticket;
      outcome_to_result outcome
    | None ->
      let rec read_until () =
        match io_guard (fun () -> Wire.read_frame t.ic) with
        | Error _ as e -> e
        | Ok None -> Error (Io "connection closed by server")
        | Ok (Some payload) -> (
          match Wire.decode_outcome payload with
          | exception Invalid_argument m -> Error (Protocol m)
          | id, outcome ->
            if id = ticket then outcome_to_result outcome
            else begin
              Hashtbl.replace t.stash id outcome;
              read_until ()
            end)
      in
      read_until ()

let call t ?deadline_ms req =
  match send t ?deadline_ms req with
  | Error _ as e -> e
  | Ok ticket -> recv t ticket

(* ---------- typed calls ---------- *)

let shape what = Error (Protocol ("response is not " ^ what))

let ping t =
  incr t.nonce;
  let n = !(t.nonce) land 0xFFFFFFFF in
  match call t (Wire.Ping n) with
  | Ok (Wire.R_pong m) ->
    if m = n then Ok ()
    else Error (Protocol (Printf.sprintf "pong nonce %d, sent %d" m n))
  | Ok _ -> shape "a pong"
  | Error _ as e -> e

let stats t =
  match call t Wire.Stats with
  | Ok (Wire.R_stats s) -> Ok s
  | Ok _ -> shape "stats"
  | Error _ as e -> e

let corpus_info t =
  match call t Wire.Corpus_info with
  | Ok (Wire.R_header h) -> Ok h
  | Ok _ -> shape "a corpus header"
  | Error _ as e -> e

let nth t i =
  match call t (Wire.Nth i) with
  | Ok (Wire.R_matrix m) -> Ok m
  | Ok _ -> shape "a matrix"
  | Error _ as e -> e

let mem t m =
  match call t (Wire.Mem m) with
  | Ok (Wire.R_found b) -> Ok b
  | Ok _ -> shape "a membership bit"
  | Error _ as e -> e

let rank t m =
  match call t (Wire.Rank m) with
  | Ok (Wire.R_rank r) -> Ok r
  | Ok _ -> shape "a rank"
  | Error _ as e -> e

let range_prefix t prefix =
  match call t (Wire.Range_prefix prefix) with
  | Ok (Wire.R_range (lo, hi)) -> Ok (lo, hi)
  | Ok _ -> shape "a range"
  | Error _ as e -> e

let cgraph t i =
  match call t (Wire.Cgraph_of i) with
  | Ok (Wire.R_graph g) -> Ok g
  | Ok _ -> shape "a constraint graph"
  | Error _ as e -> e

let evaluate t ?deadline_ms ~scheme ~graph_name graph =
  match call t ?deadline_ms (Wire.Evaluate { scheme; graph_name; graph }) with
  | Ok (Wire.R_evaluation e) -> Ok e
  | Ok _ -> shape "an evaluation"
  | Error _ as e -> e

let sleep_ms t ?deadline_ms ms =
  match call t ?deadline_ms (Wire.Sleep_ms ms) with
  | Ok (Wire.R_slept n) -> Ok n
  | Ok _ -> shape "a sleep acknowledgement"
  | Error _ as e -> e
