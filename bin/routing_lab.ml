(* routing_lab: command-line laboratory for the Fraigniaud-Gavoille
   (1996) reproduction. Every experiment of DESIGN.md is reachable from
   here; `routing_lab --help` lists the commands. *)

open Cmdliner
open Umrs_graph
open Umrs_routing
open Umrs_core

let pf fmt = Format.printf fmt

(* ---------- shared converters ---------- *)

let graph_of_family ~seed family size =
  let st = Random.State.make [| seed; size; 0xF00 |] in
  match family with
  | "path" -> Generators.path size
  | "cycle" | "ring" -> Generators.cycle size
  | "complete" -> Generators.complete size
  | "star" -> Generators.star size
  | "wheel" -> Generators.wheel size
  | "hypercube" ->
    let rec dim d = if 1 lsl d >= size then d else dim (d + 1) in
    Generators.hypercube (dim 0)
  | "grid" ->
    let side = max 2 (int_of_float (sqrt (float_of_int size))) in
    Generators.grid side side
  | "torus" ->
    let side = max 3 (int_of_float (sqrt (float_of_int size))) in
    Generators.torus side side
  | "petersen" -> Generators.petersen ()
  | f when String.length f > 5 && String.sub f 0 5 = "file:" ->
    let path = String.sub f 5 (String.length f - 5) in
    (try Graph_io.load ~path with
    | Sys_error msg ->
      Printf.eprintf "routing_lab: cannot load graph file %S: %s\n" path msg;
      exit 2
    | Invalid_argument msg ->
      Printf.eprintf "routing_lab: %S is not a valid graph file: %s\n" path msg;
      exit 2)
  | "tree" -> Generators.random_tree st size
  | "caterpillar" ->
    Generators.caterpillar st ~spine:(max 1 (size / 2)) ~legs:(size / 2)
  | "ktree" -> Generators.k_tree st ~k:3 (max 4 size)
  | "outerplanar" -> Generators.maximal_outerplanar st (max 3 size)
  | "debruijn" ->
    let rec dim d = if 1 lsl d >= size then d else dim (d + 1) in
    Generators.de_bruijn_like (max 1 (dim 0))
  | "globe" ->
    let m = max 2 (int_of_float (sqrt (float_of_int size))) in
    Generators.globe ~meridians:m ~parallels:(max 1 ((size - 2) / m))
  | "random" ->
    Generators.random_connected st ~n:size
      ~m:(min (size * (size - 1) / 2) (2 * size))
  | "dense" ->
    Generators.random_connected st ~n:size
      ~m:(min (size * (size - 1) / 2) (size * size / 4))
  | "regular" ->
    Generators.random_regular st ~n:(size + (size mod 2)) ~d:3
  | "ba" -> Generators.barabasi_albert st ~n:size ~m:2
  | "ba3" -> Generators.barabasi_albert st ~n:size ~m:3
  | "powerlaw" -> Generators.chung_lu st ~n:size ~exponent:2.5
  | other -> invalid_arg (Printf.sprintf "unknown graph family %S" other)

let scheme_of_name ~seed name =
  match name with
  | "tables" -> Table_scheme.scheme
  | "tables-rle" -> Compressed_tables.scheme
  | "tree-cover" -> Tree_cover_scheme.scheme
  | "interval" -> Interval_routing.scheme
  | "interval-id" -> Interval_routing.scheme_identity
  | "landmark" -> Landmark_scheme.scheme
  | "tz" -> Tz_scheme.scheme
  | "spanner3" -> Spanner_scheme.scheme ~k:2
  | "spanner5" -> Spanner_scheme.scheme ~k:3
  | "ecube" ->
    { Scheme.name = "ecube"; stretch_bound = Some 1.0;
      build = Specialized.build_ecube }
  | "ring" ->
    { Scheme.name = "ring"; stretch_bound = Some 1.0;
      build = Specialized.build_ring }
  | "hierarchical" -> Hierarchical_scheme.scheme
  | "kn-adversarial" ->
    {
      Scheme.name = "kn-adversarial";
      stretch_bound = Some 1.0;
      build =
        (fun g ->
          Specialized.build_complete_adversarial
            (Random.State.make [| seed |])
            g);
    }
  | other -> invalid_arg (Printf.sprintf "unknown scheme %S" other)

let family_arg =
  let doc =
    "Graph family: path, cycle, complete, star, wheel, hypercube, grid, \
     torus, petersen, tree, caterpillar, ktree, outerplanar, debruijn, \
     globe, random, dense, regular, ba, ba3, powerlaw - or file:PATH for a \
     saved graph."
  in
  Arg.(value & opt string "petersen" & info [ "g"; "graph" ] ~docv:"FAMILY" ~doc)

let size_arg default =
  Arg.(value & opt int default & info [ "n"; "size" ] ~docv:"N"
         ~doc:"Target graph order.")

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")

let scheme_arg =
  let doc =
    "Routing scheme: tables, tables-rle, interval, interval-id, landmark, \
     tz, spanner3, spanner5, hierarchical, tree-cover, ecube, ring, \
     kn-adversarial."
  in
  Arg.(value & opt string "tables" & info [ "s"; "scheme" ] ~docv:"SCHEME" ~doc)

let matrix_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"MATRIX"
         ~doc:"Matrix like \"[1 2; 1 1]\" (rows ;-separated).")

let variant_arg =
  let variant_conv =
    Arg.enum [ ("full", Canonical.Full); ("positional", Canonical.Positional) ]
  in
  Arg.(value & opt variant_conv Canonical.Full & info [ "variant" ] ~docv:"VARIANT"
         ~doc:"Equivalence variant: full (Definition 2) or positional \
               (rows+columns only).")

let telemetry_arg =
  Arg.(value & opt (some string) None & info [ "telemetry" ] ~docv:"FILE"
         ~doc:"Write JSONL telemetry events to FILE (schema in DESIGN.md \
               section 8).")

(* Run [f] with the telemetry sink attached when requested; the sink is
   closed (flushing a final metrics event) even if [f] raises. *)
let with_telemetry telemetry f =
  match telemetry with None -> f () | Some path -> Telemetry.with_file path f

(* ---------- commands ---------- *)

let evaluate_cmd =
  let run family size seed scheme_name telemetry =
    with_telemetry telemetry @@ fun () ->
    let g = graph_of_family ~seed family size in
    let scheme = scheme_of_name ~seed scheme_name in
    let e = Scheme.evaluate scheme ~graph_name:family g in
    pf "%a@." Scheme.pp_evaluation e
  in
  Cmd.v
    (Cmd.info "evaluate" ~doc:"Run a scheme on a graph; report memory and stretch.")
    Term.(const run $ family_arg $ size_arg 16 $ seed_arg $ scheme_arg
          $ telemetry_arg)

let route_cmd =
  let run family size seed scheme_name src dst =
    let g = graph_of_family ~seed family size in
    let scheme = scheme_of_name ~seed scheme_name in
    let b = scheme.Scheme.build g in
    let t = Routing_function.route b.Scheme.rf src dst in
    pf "route %d -> %d (%d hops): %a@." src dst t.Routing_function.hops
      (Format.pp_print_list
         ~pp_sep:(fun f () -> Format.pp_print_string f " -> ")
         Format.pp_print_int)
      t.Routing_function.path;
    pf "headers: %a@."
      (Format.pp_print_list
         ~pp_sep:(fun f () -> Format.pp_print_string f ", ")
         Routing_function.pp_header)
      t.Routing_function.headers;
    pf "distance: %d (stretch %.3f)@."
      (Bfs.dist (b.Scheme.rf).Routing_function.graph src dst)
      (float_of_int t.Routing_function.hops
      /. float_of_int (Bfs.dist (b.Scheme.rf).Routing_function.graph src dst))
  in
  let src = Arg.(value & opt int 0 & info [ "src" ] ~docv:"U" ~doc:"Source.") in
  let dst = Arg.(value & opt int 1 & info [ "dst" ] ~docv:"V" ~doc:"Destination.") in
  Cmd.v
    (Cmd.info "route" ~doc:"Trace a single routing path.")
    Term.(const run $ family_arg $ size_arg 16 $ seed_arg $ scheme_arg $ src $ dst)

let simulate_cmd =
  let run family size seed scheme_name pairs loss dead telemetry =
    with_telemetry telemetry @@ fun () ->
    let g = graph_of_family ~seed family size in
    let scheme = scheme_of_name ~seed scheme_name in
    let b = scheme.Scheme.build g in
    let rf = b.Scheme.rf in
    let st = Random.State.make [| seed; 0x51 |] in
    let n = Umrs_graph.Graph.order rf.Routing_function.graph in
    let packet_pairs =
      match pairs with
      | 0 ->
        let acc = ref [] in
        for u = n - 1 downto 0 do
          for v = n - 1 downto 0 do
            if u <> v then acc := (u, v) :: !acc
          done
        done;
        !acc
      | k ->
        List.init k (fun _ ->
            let u = Random.State.int st n in
            let rec draw () =
              let v = Random.State.int st n in
              if v = u then draw () else v
            in
            (u, draw ()))
    in
    let dead_links =
      List.filter_map
        (fun s ->
          match String.split_on_char '-' s with
          | [ a; b ] -> Some (int_of_string a, int_of_string b)
          | _ -> None)
        dead
    in
    let stats =
      if dead_links <> [] then
        Simulator.run_with_dead_links ~dead:dead_links rf ~pairs:packet_pairs
      else if loss > 0.0 then
        Simulator.run_flaky st ~loss rf ~pairs:packet_pairs
      else Simulator.run rf ~pairs:packet_pairs
    in
    pf "%a@." Simulator.pp_stats stats
  in
  let pairs =
    Arg.(value & opt int 0 & info [ "pairs" ] ~docv:"K"
           ~doc:"Random packet count (0 = full total exchange).")
  in
  let loss =
    Arg.(value & opt float 0.0 & info [ "loss" ] ~docv:"P"
           ~doc:"Transient per-crossing loss probability.")
  in
  let dead =
    Arg.(value & opt_all string [] & info [ "dead" ] ~docv:"U-V"
           ~doc:"Dead link, e.g. --dead 0-1 (repeatable).")
  in
  Cmd.v
    (Cmd.info "simulate"
       ~doc:"Synchronous store-and-forward simulation with contention, \
             optional loss and dead links.")
    Term.(const run $ family_arg $ size_arg 16 $ seed_arg $ scheme_arg $ pairs
          $ loss $ dead $ telemetry_arg)

let canon_cmd =
  let run s variant =
    let m = Matrix.of_string s in
    pf "input:     %s@." (Matrix.to_string m);
    pf "canonical: %s@." (Matrix.to_string (Canonical.canonical ~variant m))
  in
  Cmd.v
    (Cmd.info "canon" ~doc:"Canonical representative of a matrix (Definition 2).")
    Term.(const run $ matrix_arg $ variant_arg)

let enumerate_cmd =
  let run p q d variant telemetry =
    with_telemetry telemetry @@ fun () ->
    let set = Enumerate.canonical_set ~variant ~p ~q ~d () in
    pf "|%dM(%d,%d)| = %d@." d p q (List.length set);
    List.iter
      (fun m ->
        pf "%-20s class size %d@." (Matrix.to_string m)
          (Enumerate.class_size ~variant ~p ~q ~d m))
      set
  in
  let p = Arg.(value & opt int 2 & info [ "p" ] ~doc:"Rows.") in
  let q = Arg.(value & opt int 2 & info [ "q" ] ~doc:"Columns.") in
  let d = Arg.(value & opt int 3 & info [ "d" ] ~doc:"Entry bound.") in
  Cmd.v
    (Cmd.info "enumerate" ~doc:"Enumerate the canonical set dM(p,q).")
    Term.(const run $ p $ q $ d $ variant_arg $ telemetry_arg)

let corpus_cmd =
  let variant_label = function
    | Canonical.Full -> "full"
    | Canonical.Positional -> "positional"
  in
  let pp_header (h : Umrs_store.Corpus.header) =
    pf "schema version: %d@." h.Umrs_store.Corpus.version;
    pf "instance:       p=%d q=%d d=%d variant=%s@." h.Umrs_store.Corpus.p
      h.Umrs_store.Corpus.q h.Umrs_store.Corpus.d
      (variant_label h.Umrs_store.Corpus.variant);
    pf "records:        %d (record = %d bytes)@." h.Umrs_store.Corpus.count
      (Umrs_store.Corpus.Record.bytes ~p:h.Umrs_store.Corpus.p
         ~q:h.Umrs_store.Corpus.q ~d:h.Umrs_store.Corpus.d);
    pf "checksum:       %016Lx@." h.Umrs_store.Corpus.checksum
  in
  let file_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE"
           ~doc:"Corpus file.")
  in
  let build_cmd =
    let run p q d variant out domains checkpoint_dir checkpoint_every resume
        telemetry =
      with_telemetry telemetry @@ fun () ->
      match
        Umrs_store.Builder.build ~variant ?domains ?checkpoint_dir
          ~checkpoint_every ~resume ~p ~q ~d ~out ()
      with
      | o ->
        if o.Umrs_store.Builder.o_resumed_from > 0 then
          pf "resumed: skipped %d of %d raw matrices via checkpoints@."
            o.Umrs_store.Builder.o_resumed_from o.Umrs_store.Builder.o_total;
        pf "%d classes of %d raw matrices (%d shard%s, %d checkpoint%s) -> %s@."
          o.Umrs_store.Builder.o_classes o.Umrs_store.Builder.o_total
          o.Umrs_store.Builder.o_shards
          (if o.Umrs_store.Builder.o_shards = 1 then "" else "s")
          o.Umrs_store.Builder.o_checkpoints
          (if o.Umrs_store.Builder.o_checkpoints = 1 then "" else "s")
          out;
        pf "checksum %016Lx@."
          o.Umrs_store.Builder.o_header.Umrs_store.Corpus.checksum
      | exception Invalid_argument msg ->
        Printf.eprintf "routing_lab: corpus build: %s\n" msg;
        exit 2
    in
    let p = Arg.(value & opt int 2 & info [ "p" ] ~doc:"Rows.") in
    let q = Arg.(value & opt int 2 & info [ "q" ] ~doc:"Columns.") in
    let d = Arg.(value & opt int 3 & info [ "d" ] ~doc:"Entry bound.") in
    let out =
      Arg.(required & opt (some string) None & info [ "o"; "out" ] ~docv:"FILE"
             ~doc:"Output corpus file.")
    in
    let domains =
      Arg.(value & opt (some int) None & info [ "domains" ] ~docv:"K"
             ~doc:"Shard count (default: recommended domain count).")
    in
    let checkpoint_dir =
      Arg.(value & opt (some string) None & info [ "checkpoint-dir" ] ~docv:"DIR"
             ~doc:"Persist per-shard progress into DIR; a killed run can \
                   continue with $(b,--resume).")
    in
    let checkpoint_every =
      Arg.(value & opt int (1 lsl 14) & info [ "checkpoint-every" ] ~docv:"N"
             ~doc:"Raw matrices between shard checkpoints.")
    in
    let resume =
      Arg.(value & flag & info [ "resume" ]
             ~doc:"Continue from the checkpoints in --checkpoint-dir (the \
                   manifest must match p/q/d/variant).")
    in
    Cmd.v
      (Cmd.info "build"
         ~doc:"Enumerate dM(p,q) and stream it to a corpus file, with \
               optional crash-safe checkpointing.")
      Term.(const run $ p $ q $ d $ variant_arg $ out $ domains
            $ checkpoint_dir $ checkpoint_every $ resume $ telemetry_arg)
  in
  let info_cmd =
    let run path =
      match Umrs_store.Corpus.info ~path with
      | h -> pp_header h
      | exception Invalid_argument msg ->
        Printf.eprintf "routing_lab: corpus info: %s: %s\n" path msg;
        exit 2
      | exception Sys_error msg ->
        Printf.eprintf "routing_lab: corpus info: %s\n" msg;
        exit 2
    in
    Cmd.v
      (Cmd.info "info" ~doc:"Print a corpus file's header.")
      Term.(const run $ file_arg)
  in
  let verify_cmd =
    let run path =
      match Umrs_store.Corpus.verify ~path with
      | v ->
        pp_header v.Umrs_store.Corpus.v_header;
        if v.Umrs_store.Corpus.v_problems = [] then
          pf "verify: OK (%d records, checksum %016Lx)@."
            v.Umrs_store.Corpus.v_records_read
            v.Umrs_store.Corpus.v_computed_checksum
        else begin
          List.iter
            (fun s -> pf "verify: PROBLEM: %s@." s)
            v.Umrs_store.Corpus.v_problems;
          exit 1
        end
      | exception Invalid_argument msg ->
        Printf.eprintf "routing_lab: corpus verify: %s: %s\n" path msg;
        exit 2
      | exception Sys_error msg ->
        Printf.eprintf "routing_lab: corpus verify: %s\n" msg;
        exit 2
    in
    Cmd.v
      (Cmd.info "verify"
         ~doc:"Full integrity check: layout, checksum, record decoding, \
               sort order.")
      Term.(const run $ file_arg)
  in
  let show_cmd =
    let run path =
      match Umrs_store.Corpus.load ~path with
      | h, set ->
        pf "|%dM(%d,%d)| = %d (%s variant, from %s)@." h.Umrs_store.Corpus.d
          h.Umrs_store.Corpus.p h.Umrs_store.Corpus.q (List.length set)
          (variant_label h.Umrs_store.Corpus.variant)
          path;
        List.iter (fun m -> pf "%s@." (Matrix.to_string m)) set
      | exception Invalid_argument msg ->
        Printf.eprintf "routing_lab: corpus show: %s: %s\n" path msg;
        exit 2
      | exception Sys_error msg ->
        Printf.eprintf "routing_lab: corpus show: %s\n" msg;
        exit 2
    in
    Cmd.v
      (Cmd.info "show"
         ~doc:"Load a corpus and print its matrices (the load-from-disk \
               path later workloads use).")
      Term.(const run $ file_arg)
  in
  let fail_query_error ctx e =
    Printf.eprintf "routing_lab: corpus %s: %s\n" ctx
      (Umrs_store.Query.error_to_string e);
    exit 1
  in
  let index_arg =
    Arg.(value & opt (some string) None & info [ "index" ] ~docv:"FILE"
           ~doc:"Index file (default: the corpus path with .umrsx appended).")
  in
  let index_cmd =
    let run path stride out =
      match Umrs_store.Query.build ~corpus:path ?stride ?out () with
      | Ok m ->
        pf "indexed %d records (stride %d, %d sample%s) -> %s@."
          m.Umrs_store.Query.x_count m.Umrs_store.Query.x_stride
          m.Umrs_store.Query.x_samples
          (if m.Umrs_store.Query.x_samples = 1 then "" else "s")
          (Option.value out
             ~default:(Umrs_store.Query.index_path path));
        pf "index checksum %016Lx (corpus %016Lx)@."
          m.Umrs_store.Query.x_checksum m.Umrs_store.Query.x_corpus_checksum
      | Error e -> fail_query_error "index" e
      | exception Invalid_argument msg ->
        Printf.eprintf "routing_lab: corpus index: %s\n" msg;
        exit 2
    in
    let stride =
      Arg.(value & opt (some int) None & info [ "stride" ] ~docv:"N"
             ~doc:"Records between samples (default 64): lookups scan at \
                   most N records after the binary search.")
    in
    let out =
      Arg.(value & opt (some string) None & info [ "o"; "out" ] ~docv:"FILE"
             ~doc:"Output index file (default: corpus path + .umrsx).")
    in
    Cmd.v
      (Cmd.info "index"
         ~doc:"Build the .umrsx sidecar index enabling random access and \
               membership queries without loading the corpus.")
      Term.(const run $ file_arg $ stride $ out)
  in
  let query_cmd =
    let parse_prefix s =
      let fields =
        String.split_on_char ' ' (String.map (function ',' -> ' ' | c -> c) s)
        |> List.filter (fun f -> f <> "")
      in
      try Array.of_list (List.map int_of_string fields)
      with Failure _ ->
        Printf.eprintf
          "routing_lab: corpus query: bad prefix %S (expected integers)\n" s;
        exit 2
    in
    let run path index nths mems ranks prefixes cgraphs domains telemetry =
      with_telemetry telemetry @@ fun () ->
      match Umrs_store.Query.open_ ~corpus:path ?index () with
      | Error e -> fail_query_error "query" e
      | Ok t ->
        Fun.protect ~finally:(fun () -> Umrs_store.Query.close t) @@ fun () ->
        let requests =
          List.concat
            [ List.map (fun i -> Umrs_store.Query.Nth i) nths;
              List.map
                (fun s -> Umrs_store.Query.Mem (Matrix.of_string s))
                mems;
              List.map
                (fun s -> Umrs_store.Query.Rank (Matrix.of_string s))
                ranks;
              List.map
                (fun s -> Umrs_store.Query.Range_prefix (parse_prefix s))
                prefixes;
              List.map (fun i -> Umrs_store.Query.Cgraph_of i) cgraphs ]
          |> Array.of_list
        in
        if Array.length requests = 0 then begin
          Printf.eprintf
            "routing_lab: corpus query: no requests (use --nth/--mem/--rank/\
             --prefix/--cgraph)\n";
          exit 2
        end;
        (match Umrs_store.Query.batch ?domains t requests with
        | responses ->
          Array.iteri
            (fun i resp ->
              match (requests.(i), resp) with
              | Umrs_store.Query.Nth n, Umrs_store.Query.R_matrix m ->
                pf "nth %d: %s@." n (Matrix.to_string m)
              | Umrs_store.Query.Mem m, Umrs_store.Query.R_found b ->
                pf "mem %s: %b@." (Matrix.to_string m) b
              | Umrs_store.Query.Rank m, Umrs_store.Query.R_rank r ->
                pf "rank %s: %d@." (Matrix.to_string m) r
              | Umrs_store.Query.Range_prefix p, Umrs_store.Query.R_range (lo, hi)
                ->
                pf "prefix [%s]: records [%d, %d) - %d matching@."
                  (String.concat " "
                     (Array.to_list (Array.map string_of_int p)))
                  lo hi (hi - lo)
              | Umrs_store.Query.Cgraph_of n, Umrs_store.Query.R_graph t ->
                pf "cgraph %d:@." n;
                pf "%a@." Graph.pp t.Cgraph.graph;
                pf "constrained: %a@."
                  (Format.pp_print_array
                     ~pp_sep:(fun f () -> Format.pp_print_char f ' ')
                     Format.pp_print_int)
                  t.Cgraph.constrained;
                pf "targets:     %a@."
                  (Format.pp_print_array
                     ~pp_sep:(fun f () -> Format.pp_print_char f ' ')
                     Format.pp_print_int)
                  t.Cgraph.targets
              | _ -> assert false)
            responses
        | exception Invalid_argument msg ->
          Printf.eprintf "routing_lab: corpus query: %s\n" msg;
          exit 2)
    in
    let nths =
      Arg.(value & opt_all int [] & info [ "nth" ] ~docv:"I"
             ~doc:"Fetch record I of the sorted corpus (repeatable).")
    in
    let mems =
      Arg.(value & opt_all string [] & info [ "mem" ] ~docv:"MATRIX"
             ~doc:"Membership of a matrix like \"[1 2; 1 1]\" (repeatable).")
    in
    let ranks =
      Arg.(value & opt_all string [] & info [ "rank" ] ~docv:"MATRIX"
             ~doc:"Number of records strictly below MATRIX (repeatable).")
    in
    let prefixes =
      Arg.(value & opt_all string [] & info [ "prefix" ] ~docv:"ENTRIES"
             ~doc:"Record range whose row-major entries start with ENTRIES, \
                   e.g. \"1 2\" (repeatable).")
    in
    let cgraphs =
      Arg.(value & opt_all int [] & info [ "cgraph" ] ~docv:"I"
             ~doc:"Materialize the Lemma-2 graph of constraints of record I \
                   (repeatable).")
    in
    let domains =
      Arg.(value & opt (some int) None & info [ "domains" ] ~docv:"K"
             ~doc:"Fan the batch out over K domains (default: recommended \
                   domain count).")
    in
    Cmd.v
      (Cmd.info "query"
         ~doc:"Point and batched queries against an indexed corpus: record \
               fetch, membership, rank, prefix ranges, graphs of \
               constraints - all without loading the file.")
      Term.(const run $ file_arg $ index_arg $ nths $ mems $ ranks $ prefixes
            $ cgraphs $ domains $ telemetry_arg)
  in
  let shard_cmd =
    let run path shards out_dir stride no_index =
      match
        Umrs_store.Shard.split ~corpus:path ~shards ?out_dir ?stride
          ~index:(not no_index) ()
      with
      | Ok pieces ->
        Array.iter
          (fun pc ->
            pf "shard %d: records [%d, %d) -> %s@."
              pc.Umrs_store.Shard.pc_index pc.Umrs_store.Shard.pc_lo
              pc.Umrs_store.Shard.pc_hi pc.Umrs_store.Shard.pc_corpus)
          pieces;
        pf "split %d records into %d contiguous key-range shard%s@."
          (Array.fold_left
             (fun acc pc ->
               acc + pc.Umrs_store.Shard.pc_hi - pc.Umrs_store.Shard.pc_lo)
             0 pieces)
          shards
          (if shards = 1 then "" else "s")
      | Error msg ->
        Printf.eprintf "routing_lab: corpus shard: %s\n" msg;
        exit 1
      | exception Invalid_argument msg ->
        Printf.eprintf "routing_lab: corpus shard: %s\n" msg;
        exit 2
    in
    let shards =
      Arg.(required & opt (some int) None & info [ "shards" ] ~docv:"N"
             ~doc:"Number of contiguous key-range pieces to cut.")
    in
    let out_dir =
      Arg.(value & opt (some string) None & info [ "out-dir" ] ~docv:"DIR"
             ~doc:"Directory for the pieces (default: the corpus's own \
                   directory; created if missing).")
    in
    let stride =
      Arg.(value & opt (some int) None & info [ "stride" ] ~docv:"N"
             ~doc:"Index sample stride for each piece's sidecar.")
    in
    let no_index =
      Arg.(value & flag & info [ "no-index" ]
             ~doc:"Skip building the per-piece .umrsx sidecar indexes.")
    in
    Cmd.v
      (Cmd.info "shard"
         ~doc:"Cut a corpus into contiguous key-range pieces - one \
               well-formed, individually indexed corpus per cluster node.")
      Term.(const run $ file_arg $ shards $ out_dir $ stride $ no_index)
  in
  Cmd.group
    (Cmd.info "corpus"
       ~doc:"Persistent on-disk canonical-set store: build (checkpointed, \
             resumable), info, verify, show, index, query, shard.")
    [ build_cmd; info_cmd; verify_cmd; show_cmd; index_cmd; query_cmd;
      shard_cmd ]

let cgraph_cmd =
  let run s pad =
    let m = Matrix.create ((Matrix.of_string s).Matrix.entries) in
    let t = Cgraph.of_matrix m in
    let t = if pad > 0 then Cgraph.pad_to_order t ~n:pad else t in
    pf "%a@." Graph.pp t.Cgraph.graph;
    pf "constrained: %a@."
      (Format.pp_print_array ~pp_sep:(fun f () -> Format.pp_print_char f ' ')
         Format.pp_print_int)
      t.Cgraph.constrained;
    pf "targets:     %a@."
      (Format.pp_print_array ~pp_sep:(fun f () -> Format.pp_print_char f ' ')
         Format.pp_print_int)
      t.Cgraph.targets;
    (match Verify.check_cgraph t ~bound:Verify.below_two with
    | Ok () -> pf "forced-port property below stretch 2: OK@."
    | Error vs ->
      List.iter
        (fun v ->
          pf "VIOLATION at (%d,%d): expected %d, usable {%a}@." v.Verify.row
            v.Verify.col v.Verify.expected
            (Format.pp_print_list
               ~pp_sep:(fun f () -> Format.pp_print_char f ' ')
               Format.pp_print_int)
            v.Verify.usable)
        vs)
  in
  let pad =
    Arg.(value & opt int 0 & info [ "pad" ] ~docv:"N"
           ~doc:"Pad to order N with an attached path (Theorem 1).")
  in
  Cmd.v
    (Cmd.info "cgraph"
       ~doc:"Build and verify the graph of constraints of a matrix (Lemma 2).")
    Term.(const run $ matrix_arg $ pad)

let lemma1_cmd =
  let run p q d =
    pf "d^(pq)                    = %s@." (Bignat.to_string (Count.total_raw ~p ~q ~d));
    pf "bound d^(pq)/(p!q!(d!)^p) = %s@."
      (Bignat.to_string (Count.lemma1_bound ~p ~q ~d));
    pf "log2 bound                = %.2f bits@." (Count.log2_lemma1_bound ~p ~q ~d);
    match Enumerate.count ~p ~q ~d () with
    | exact -> pf "exact |dM(p,q)|           = %d@." exact
    | exception Invalid_argument _ ->
      pf "exact |dM(p,q)|           = (too large to enumerate)@."
  in
  let p = Arg.(value & opt int 2 & info [ "p" ] ~doc:"Rows.") in
  let q = Arg.(value & opt int 2 & info [ "q" ] ~doc:"Columns.") in
  let d = Arg.(value & opt int 3 & info [ "d" ] ~doc:"Entry bound.") in
  Cmd.v
    (Cmd.info "lemma1" ~doc:"Lemma 1 counting bound vs the exact count.")
    Term.(const run $ p $ q $ d)

let theorem1_cmd =
  let run ns epss =
    List.iter
      (fun b -> pf "%a@." Lower_bound.pp_bound b)
      (Lower_bound.sweep ~ns ~epss)
  in
  let ns =
    Arg.(value & opt (list int) [ 1024; 16384; 262144 ]
         & info [ "ns" ] ~docv:"N,..." ~doc:"Orders to sweep.")
  in
  let epss =
    Arg.(value & opt (list float) [ 0.25; 0.5; 0.75 ]
         & info [ "eps" ] ~docv:"E,..." ~doc:"Epsilons to sweep.")
  in
  Cmd.v
    (Cmd.info "theorem1"
       ~doc:"Theorem 1: per-router lower bound vs the table upper bound.")
    Term.(const run $ ns $ epss)

let reconstruct_cmd =
  let run p q d pad =
    let pad_to = if pad > 0 then Some pad else None in
    let o =
      Reconstruct.run_experiment ?pad_to ~p ~q ~d ~scheme:Table_scheme.build ()
    in
    pf "classes=%d injective=%b forced=%b recovered=%b@." o.Reconstruct.classes
      o.Reconstruct.injective o.Reconstruct.all_forced
      o.Reconstruct.all_recovered;
    pf "information=%.2f bits, side=%.2f bits, net=%.2f bits@."
      o.Reconstruct.bits_information o.Reconstruct.bits_side
      o.Reconstruct.bits_net
  in
  let p = Arg.(value & opt int 2 & info [ "p" ] ~doc:"Rows.") in
  let q = Arg.(value & opt int 2 & info [ "q" ] ~doc:"Columns.") in
  let d = Arg.(value & opt int 3 & info [ "d" ] ~doc:"Entry bound.") in
  let pad = Arg.(value & opt int 0 & info [ "pad" ] ~doc:"Pad graphs to order N.") in
  Cmd.v
    (Cmd.info "reconstruct"
       ~doc:"Theorem 1 end-to-end: build, route, rebuild every matrix of dM(p,q).")
    Term.(const run $ p $ q $ d $ pad)

let compare_cmd =
  let run family size seed csv =
    let g = graph_of_family ~seed family size in
    let evals =
      Registry.compare_on ~graph_name:family g (Registry.universal ())
    in
    if csv then print_string (Registry.to_csv evals)
    else List.iter (fun e -> pf "%a@." Scheme.pp_evaluation e) evals
  in
  let csv = Arg.(value & flag & info [ "csv" ] ~doc:"Emit CSV.") in
  Cmd.v
    (Cmd.info "compare"
       ~doc:"Run every universal scheme on one graph; table or CSV.")
    Term.(const run $ family_arg $ size_arg 16 $ seed_arg $ csv)

let broadcast_cmd =
  let run family size seed root =
    let g = graph_of_family ~seed family size in
    let rf = (Table_scheme.build g).Scheme.rf in
    let uni = Collective.broadcast_unicast rf ~root in
    let tree = Collective.broadcast_tree g ~root in
    pf "unicast: %d rounds, %d messages, %d reached@." uni.Collective.rounds
      uni.Collective.messages uni.Collective.reached;
    pf "tree:    %d rounds, %d messages, %d reached@." tree.Collective.rounds
      tree.Collective.messages tree.Collective.reached
  in
  let root = Arg.(value & opt int 0 & info [ "root" ] ~doc:"Broadcast root.") in
  Cmd.v
    (Cmd.info "broadcast" ~doc:"Unicast-storm vs BFS-tree broadcast costs.")
    Term.(const run $ family_arg $ size_arg 16 $ seed_arg $ root)

let check_cmd =
  let run () =
    let results = Spec.all () in
    let ok = ref true in
    List.iter
      (fun (name, passed) ->
        if not passed then ok := false;
        pf "%-45s %s@." name (if passed then "OK" else "FAILED"))
      results;
    if not !ok then exit 1
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:"Run the executable checklist of every claim of the paper.")
    Term.(const run $ const ())

let deadlock_cmd =
  let run family size seed scheme_name =
    let g = graph_of_family ~seed family size in
    let scheme = scheme_of_name ~seed scheme_name in
    let b = scheme.Scheme.build g in
    match Deadlock.find_cycle b.Scheme.rf with
    | None -> pf "deadlock-free: channel dependency graph is acyclic@."
    | Some cycle ->
      pf "NOT deadlock-free; dependency cycle (%d channels):@."
        (List.length cycle);
      List.iter (fun (v, k) -> pf "  channel (vertex %d, port %d)@." v k) cycle
  in
  Cmd.v
    (Cmd.info "deadlock"
       ~doc:"Dally-Seitz deadlock-freedom check via channel dependencies.")
    Term.(const run $ family_arg $ size_arg 16 $ seed_arg $ scheme_arg)

let save_cmd =
  let run family size seed path =
    let g = graph_of_family ~seed family size in
    Graph_io.save g ~path;
    pf "saved %s (n=%d, m=%d, ports preserved) to %s@." family
      (Umrs_graph.Graph.order g)
      (Umrs_graph.Graph.size g)
      path
  in
  let path =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"PATH"
           ~doc:"Output file.")
  in
  Cmd.v
    (Cmd.info "save" ~doc:"Serialize a graph family to a file (load with file:PATH).")
    Term.(const run $ family_arg $ size_arg 16 $ seed_arg $ path)

let global_cmd =
  let run ns =
    List.iter
      (fun b -> pf "%a@." Lower_bound.pp_global b)
      (Lower_bound.global_sweep ~ns)
  in
  let ns =
    Arg.(value & opt (list int) [ 1024; 16384; 262144 ]
         & info [ "ns" ] ~docv:"N,..." ~doc:"Orders to sweep.")
  in
  Cmd.v
    (Cmd.info "global"
       ~doc:"The companion Omega(n^2) global bound for stretch < 2 ([6]).")
    Term.(const run $ ns)

let optimize_cmd =
  let run family size seed steps =
    let g = graph_of_family ~seed family size in
    let st = Random.State.make [| seed; 0x0b7 |] in
    let dfs = Interval_routing.compile ~labelling:Interval_routing.Dfs g in
    let opt = Interval_routing.optimize_labelling ~steps st g in
    pf "DFS labelling:       %d intervals/arc max, %d total@."
      (Interval_routing.compactness dfs)
      (Interval_routing.total_intervals dfs);
    pf "optimized labelling: %d intervals/arc max, %d total@."
      (Interval_routing.compactness opt)
      (Interval_routing.total_intervals opt)
  in
  let steps =
    Arg.(value & opt int 1000 & info [ "steps" ] ~doc:"Local-search steps.")
  in
  Cmd.v
    (Cmd.info "optimize"
       ~doc:"Optimize the interval-routing vertex labelling ([5]).")
    Term.(const run $ family_arg $ size_arg 16 $ seed_arg $ steps)

let orbit_cmd =
  let run s d positional =
    let m = Matrix.of_string s in
    if positional then
      pf "positional orbit size: %d@." (Orbit.size_positional m)
    else pf "full-group orbit size: %d@." (Orbit.size ~d m)
  in
  let d = Arg.(value & opt int 3 & info [ "d" ] ~doc:"Entry bound.") in
  let positional =
    Arg.(value & flag & info [ "positional" ] ~doc:"Rows+columns group only.")
  in
  Cmd.v
    (Cmd.info "orbit" ~doc:"Orbit size of a matrix under the Definition-2 group.")
    Term.(const run $ matrix_arg $ d $ positional)

let burnside_cmd =
  let run p q d =
    pf "positional |%dM(%d,%d)| (Burnside) = %s@." d p q
      (Bignat.to_string (Count.positional_exact ~p ~q ~d))
  in
  let p = Arg.(value & opt int 2 & info [ "p" ] ~doc:"Rows.") in
  let q = Arg.(value & opt int 2 & info [ "q" ] ~doc:"Columns.") in
  let d = Arg.(value & opt int 2 & info [ "d" ] ~doc:"Entry bound.") in
  Cmd.v
    (Cmd.info "burnside"
       ~doc:"Exact positional class count via Burnside's lemma (any d).")
    Term.(const run $ p $ q $ d)

let estimate_cmd =
  let run p q d samples seed positional =
    let st = Random.State.make [| seed |] in
    let e = Orbit.estimate_classes ~positional st ~samples ~p ~q ~d in
    pf "estimated |%dM(%d,%d)| = %.2f +- %.2f (%d samples)@." d p q
      e.Orbit.mean e.Orbit.std_error e.Orbit.samples
  in
  let p = Arg.(value & opt int 3 & info [ "p" ] ~doc:"Rows (<= 4).") in
  let q = Arg.(value & opt int 3 & info [ "q" ] ~doc:"Columns (<= 4).") in
  let d = Arg.(value & opt int 3 & info [ "d" ] ~doc:"Entry bound (<= 4).") in
  let samples = Arg.(value & opt int 200 & info [ "samples" ] ~doc:"Samples.") in
  let positional =
    Arg.(value & flag & info [ "positional" ] ~doc:"Rows+columns group only.")
  in
  Cmd.v
    (Cmd.info "estimate"
       ~doc:"Monte-Carlo estimate of |dM(p,q)| by orbit sampling.")
    Term.(const run $ p $ q $ d $ samples $ seed_arg $ positional)

let dot_cmd =
  let run family size seed ports =
    let g = graph_of_family ~seed family size in
    print_string (Umrs_graph.Dot.to_dot ~name:family ~show_ports:ports g)
  in
  let ports =
    Arg.(value & flag & info [ "ports" ] ~doc:"Annotate arcs with local ports.")
  in
  Cmd.v
    (Cmd.info "dot" ~doc:"Emit a Graphviz rendering of a graph family.")
    Term.(const run $ family_arg $ size_arg 16 $ seed_arg $ ports)

let figure1_cmd =
  let run () =
    let t = Petersen.instance () in
    pf "Petersen graph, A = {0..4} (outer), B = {5..9} (inner)@.";
    pf "%a@." Graph.pp t.Petersen.graph;
    pf "matrix of constraints (shortest path):@.%a@." Matrix.pp
      t.Petersen.matrix;
    pf "verified: %b@." (Petersen.verify t)
  in
  Cmd.v
    (Cmd.info "figure1" ~doc:"Figure 1: the Petersen-graph matrix of constraints.")
    Term.(const run $ const ())

let table1_cmd =
  let run n =
    Bounds_table.print ~n Format.std_formatter ();
    Format.print_newline ()
  in
  let n = Arg.(value & opt int 4096 & info [ "n" ] ~doc:"Evaluate formulas at order N.") in
  Cmd.v
    (Cmd.info "table1" ~doc:"Table 1: memory bounds vs stretch factor.")
    Term.(const run $ n)

let table2_cmd =
  let run family size seed scheme_names cutoff pairs csv =
    let g = graph_of_family ~seed family size in
    let names =
      List.filter
        (fun s -> s <> "")
        (String.split_on_char ',' scheme_names)
    in
    let schemes = List.map (scheme_of_name ~seed) names in
    if csv then
      pf "scheme,graph,n,m,mem_local_bits,mem_global_bits,pairs,method,mean,p50,p95,p99,max@."
    else begin
      pf "Table 2: stretch distributions vs bit-exact memory@.";
      pf "graph=%s n=%d m=%d seed=%d (exact all-pairs at n <= %d, else %d sampled pairs)@.@."
        family (Graph.order g) (Graph.size g) seed cutoff pairs;
      pf "%-14s %9s %11s %7s %7s %7s %7s %7s %9s %s@." "scheme" "local"
        "global" "mean" "p50" "p95" "p99" "max" "pairs" "method"
    end;
    List.iter
      (fun s ->
        let b = s.Scheme.build g in
        let d =
          Stretch_dist.measure ~cutoff ~pairs ~seed b.Scheme.rf
        in
        let meth = if d.Stretch_dist.ds_exact then "exact" else "sampled" in
        if csv then
          pf "%s,%s,%d,%d,%d,%d,%d,%s,%.6f,%.6f,%.6f,%.6f,%.6f@."
            s.Scheme.name family (Graph.order g) (Graph.size g)
            (Scheme.mem_local b) (Scheme.mem_global b)
            d.Stretch_dist.ds_pairs meth d.Stretch_dist.ds_mean
            d.Stretch_dist.ds_p50 d.Stretch_dist.ds_p95
            d.Stretch_dist.ds_p99 d.Stretch_dist.ds_max
        else
          pf "%-14s %9d %11d %7.3f %7.3f %7.3f %7.3f %7.3f %9d %s@."
            s.Scheme.name (Scheme.mem_local b) (Scheme.mem_global b)
            d.Stretch_dist.ds_mean d.Stretch_dist.ds_p50
            d.Stretch_dist.ds_p95 d.Stretch_dist.ds_p99
            d.Stretch_dist.ds_max d.Stretch_dist.ds_pairs meth)
      schemes
  in
  let schemes_arg =
    Arg.(value & opt string "landmark,tz"
         & info [ "schemes" ] ~docv:"NAMES"
             ~doc:"Comma-separated scheme names to compare.")
  in
  let cutoff_arg =
    Arg.(value & opt int Stretch_dist.default_cutoff
         & info [ "cutoff" ] ~docv:"N"
             ~doc:"Exact all-pairs at or below this order; sampled above.")
  in
  let pairs_arg =
    Arg.(value & opt int Stretch_dist.default_sample_pairs
         & info [ "pairs" ] ~docv:"K"
             ~doc:"Sampled source/destination pairs above the cutoff.")
  in
  let csv = Arg.(value & flag & info [ "csv" ] ~doc:"Emit CSV.") in
  Cmd.v
    (Cmd.info "table2"
       ~doc:"Stretch distributions (mean/p50/p95/p99/max) vs bit-exact \
             memory on one graph - the Thorup-Zwick vs landmark comparison \
             on Internet-like workloads.")
    Term.(const run $ family_arg $ size_arg 1000 $ seed_arg $ schemes_arg
          $ cutoff_arg $ pairs_arg $ csv)

(* ---------- bench history tooling ---------- *)

let bench_cmd =
  let trend_cmd =
    let run path threshold =
      let entries, skipped = Umrs_bench.History.load ?path () in
      if skipped > 0 then pf "(skipped %d corrupt history lines)@." skipped;
      if entries = [] then begin
        pf "no history at %s@." (Umrs_bench.History.resolved_path ?path ());
        exit 0
      end;
      (* Group values per (suite, bench, metric), in file (= time) order. *)
      let tbl = Hashtbl.create 64 in
      let keys = ref [] in
      List.iter
        (fun e ->
          List.iter
            (fun (metric, v) ->
              let key =
                (e.Umrs_bench.History.h_suite, e.Umrs_bench.History.h_bench,
                 metric)
              in
              if not (Hashtbl.mem tbl key) then keys := key :: !keys;
              Hashtbl.replace tbl key
                (v :: (try Hashtbl.find tbl key with Not_found -> [])))
            e.Umrs_bench.History.h_metrics)
        entries;
      let keys = List.rev !keys in
      (* Direction heuristic: throughput-like metrics improve upward,
         everything else (seconds, latency, bits) improves downward. *)
      let higher_better metric =
        let has sub =
          let ls = String.lowercase_ascii metric in
          let n = String.length sub and m = String.length ls in
          let rec at i = i + n <= m && (String.sub ls i n = sub || at (i + 1)) in
          at 0
        in
        has "per_sec" || has "rps" || has "ops" || has "throughput"
      in
      pf "%-10s %-26s %-22s %4s %12s %12s %12s %8s@." "suite" "bench"
        "metric" "runs" "min" "max" "last" "vs first";
      let flagged = ref [] in
      List.iter
        (fun ((suite, bench, metric) as key) ->
          let vs = List.rev (Hashtbl.find tbl key) in
          let first = List.hd vs in
          let last = List.nth vs (List.length vs - 1) in
          let mn = List.fold_left min first vs in
          let mx = List.fold_left max first vs in
          let delta =
            if Float.abs first > 0.0 then (last -. first) /. first *. 100.0
            else 0.0
          in
          let improved v =
            if Float.abs first <= 0.0 then false
            else if higher_better metric then
              v >= first *. (1.0 +. threshold)
            else v <= first *. (1.0 -. threshold)
          in
          (* sustained: the last three runs all clear the threshold vs
             the first recorded value *)
          let tail3 =
            let k = List.length vs in
            List.filteri (fun i _ -> i >= k - 3) vs
          in
          let sustained = List.length vs >= 4 && List.for_all improved tail3 in
          if sustained then flagged := key :: !flagged;
          pf "%-10s %-26s %-22s %4d %12.4g %12.4g %12.4g %+7.1f%%%s@." suite
            bench metric (List.length vs) mn mx last delta
            (if sustained then "  <- refresh?" else ""))
        keys;
      match List.rev !flagged with
      | [] -> pf "@.no sustained >%.0f%% improvements@." (threshold *. 100.0)
      | fl ->
        pf "@.baseline-refresh candidates (last 3 runs all >%.0f%% better \
            than the first):@."
          (threshold *. 100.0);
        List.iter
          (fun (suite, bench, metric) ->
            pf "  %s %s %s@." suite bench metric)
          fl
    in
    let path_arg =
      Arg.(value & opt (some string) None
           & info [ "history" ] ~docv:"FILE"
               ~doc:"History file (default BENCH_HISTORY.jsonl, or \
                     UMRS_BENCH_HISTORY).")
    in
    let threshold_arg =
      Arg.(value & opt float 0.25
           & info [ "threshold" ] ~docv:"FRAC"
               ~doc:"Improvement fraction that makes a committed baseline \
                     look slack.")
    in
    Cmd.v
      (Cmd.info "trend"
         ~doc:"Per-(bench, metric) trajectory over BENCH_HISTORY.jsonl: \
               min/max/last, and flag sustained improvements as \
               baseline-refresh candidates.")
      Term.(const run $ path_arg $ threshold_arg)
  in
  Cmd.group
    (Cmd.info "bench"
       ~doc:"Tooling over the append-only bench history.")
    [ trend_cmd ]

(* ---------- serving ---------- *)

let addr_conv =
  let parse s =
    match String.index_opt s ':' with
    | Some i when String.sub s 0 i = "unix" ->
      Ok (Umrs_server.Wire.Unix_sock (String.sub s (i + 1) (String.length s - i - 1)))
    | Some i when String.sub s 0 i = "tcp" -> (
      let rest = String.sub s (i + 1) (String.length s - i - 1) in
      match String.rindex_opt rest ':' with
      | None -> Error (`Msg (Printf.sprintf "tcp address %S needs HOST:PORT" s))
      | Some j -> (
        let host = String.sub rest 0 j in
        match int_of_string_opt (String.sub rest (j + 1) (String.length rest - j - 1)) with
        | Some port when port >= 0 && port <= 0xFFFF ->
          Ok (Umrs_server.Wire.Tcp (host, port))
        | _ -> Error (`Msg (Printf.sprintf "bad port in %S" s))))
    | _ ->
      Error
        (`Msg
           (Printf.sprintf
              "address %S is neither unix:PATH nor tcp:HOST:PORT" s))
  in
  let print ppf a =
    Format.pp_print_string ppf (Umrs_server.Wire.addr_to_string a)
  in
  Arg.conv (parse, print)

let addr_arg =
  Arg.(required & opt (some addr_conv) None
       & info [ "a"; "addr" ] ~docv:"ADDR"
           ~doc:"Service address: unix:PATH or tcp:HOST:PORT (port 0 asks \
                 the kernel; the resolved port is printed).")

let serve_cmd =
  let run addr workers queue cache corpus index backend max_conns no_mmap
      telemetry =
    with_telemetry telemetry @@ fun () ->
    let backend =
      match backend with
      | "epoll" -> Umrs_server.Server.Epoll
      | "threads" -> Umrs_server.Server.Threads
      | other ->
        Printf.eprintf
          "routing_lab: serve: unknown backend %S (epoll|threads)\n" other;
        exit 1
    in
    let cfg =
      { (Umrs_server.Server.default_config addr) with
        Umrs_server.Server.workers; queue_capacity = queue;
        cache_capacity = cache; corpus; index; backend; max_conns;
        mmap = not no_mmap }
    in
    match Umrs_server.Server.start cfg with
    | Error msg ->
      Printf.eprintf "routing_lab: serve: %s\n" msg;
      exit 1
    | Ok srv ->
      Umrs_server.Server.install_signal_handlers srv;
      pf "serving on %s (%s backend, %d worker%s, queue %d, cache %d, \
          max-conns %d%s)@."
        (Umrs_server.Wire.addr_to_string (Umrs_server.Server.addr srv))
        (match backend with
        | Umrs_server.Server.Epoll -> "epoll"
        | Umrs_server.Server.Threads -> "threads")
        workers
        (if workers = 1 then "" else "s")
        queue cache max_conns
        (match corpus with
        | None -> ", no corpus"
        | Some c -> Printf.sprintf ", corpus %s" c);
      pf "SIGTERM/SIGINT drain in-flight requests and exit@.";
      Umrs_server.Server.wait srv
  in
  let workers =
    Arg.(value & opt int 2 & info [ "workers" ] ~docv:"K"
           ~doc:"Worker domains executing requests.")
  in
  let queue =
    Arg.(value & opt int 64 & info [ "queue" ] ~docv:"N"
           ~doc:"Bounded job queue; a full queue answers OVERLOADED.")
  in
  let cache =
    Arg.(value & opt int 128 & info [ "cache" ] ~docv:"N"
           ~doc:"Evaluation LRU entries.")
  in
  let corpus =
    Arg.(value & opt (some string) None & info [ "corpus" ] ~docv:"FILE"
           ~doc:"Indexed corpus to serve (enables info/nth/mem/rank/prefix/\
                 cgraph requests).")
  in
  let index =
    Arg.(value & opt (some string) None & info [ "index" ] ~docv:"FILE"
           ~doc:"Sidecar index (default: corpus path + .umrsx).")
  in
  let backend =
    Arg.(value & opt string "epoll" & info [ "backend" ] ~docv:"B"
           ~doc:"Connection backend: $(b,epoll) (single poller thread, \
                 non-blocking fds, scales past FD_SETSIZE) or $(b,threads) \
                 (reader thread per connection).")
  in
  let max_conns =
    Arg.(value & opt int 10_240 & info [ "max-conns" ] ~docv:"N"
           ~doc:"Concurrent connection cap; excess are closed at accept.")
  in
  let no_mmap =
    Arg.(value & flag & info [ "no-mmap" ]
           ~doc:"Read the corpus through buffered channels instead of a \
                 shared file mapping.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Serve corpus queries and scheme evaluations over a socket \
             (bounded queue, deadlines, evaluation cache, graceful drain).")
    Term.(const run $ addr_arg $ workers $ queue $ cache $ corpus $ index
          $ backend $ max_conns $ no_mmap $ telemetry_arg)

let remote_cmd =
  let module C = Umrs_client in
  let fail_client ctx e =
    Printf.eprintf "routing_lab: remote %s: %s\n" ctx (C.error_to_string e);
    exit 1
  in
  let ok ctx = function Ok v -> v | Error e -> fail_client ctx e in
  let run addr retries deadline ping want_stats want_info nths mems ranks
      prefixes cgraphs eval_scheme family size seed sleep =
    let c = ok "connect" (C.connect ~retries addr) in
    Fun.protect ~finally:(fun () -> C.close c) @@ fun () ->
    let deadline_ms = deadline in
    if ping then begin
      ok "ping" (C.ping c);
      pf "ping: ok@."
    end;
    if want_info then begin
      let h = ok "info" (C.corpus_info c) in
      pf "corpus: p=%d q=%d d=%d count=%d checksum=%016Lx@."
        h.Umrs_store.Corpus.p h.Umrs_store.Corpus.q h.Umrs_store.Corpus.d
        h.Umrs_store.Corpus.count h.Umrs_store.Corpus.checksum
    end;
    List.iter
      (fun i ->
        let m = ok "nth" (C.nth c i) in
        pf "nth %d: %s@." i (Matrix.to_string m))
      nths;
    List.iter
      (fun s ->
        let m = Matrix.of_string s in
        pf "mem %s: %b@." s (ok "mem" (C.mem c m)))
      mems;
    List.iter
      (fun s ->
        let m = Matrix.of_string s in
        pf "rank %s: %d@." s (ok "rank" (C.rank c m)))
      ranks;
    List.iter
      (fun s ->
        let prefix =
          String.split_on_char ' ' (String.map (function ',' -> ' ' | c -> c) s)
          |> List.filter (fun f -> f <> "")
          |> List.map int_of_string |> Array.of_list
        in
        let lo, hi = ok "prefix" (C.range_prefix c prefix) in
        pf "prefix [%s]: records [%d, %d) - %d matching@." s lo hi (hi - lo))
      prefixes;
    List.iter
      (fun i ->
        let t = ok "cgraph" (C.cgraph c i) in
        pf "cgraph %d:@." i;
        pf "%a@." Graph.pp t.Cgraph.graph)
      cgraphs;
    (match eval_scheme with
    | None -> ()
    | Some scheme ->
      let g = graph_of_family ~seed family size in
      let e =
        ok "evaluate" (C.evaluate c ~deadline_ms ~scheme ~graph_name:family g)
      in
      pf "%a@." Scheme.pp_evaluation e);
    (match sleep with
    | None -> ()
    | Some ms ->
      let slept = ok "sleep" (C.sleep_ms c ~deadline_ms ms) in
      pf "slept %d ms@." slept);
    if want_stats then begin
      let s = ok "stats" (C.stats c) in
      pf "connections=%d requests=%d overloaded=%d timeouts=%d rejected=%d@."
        s.Umrs_server.Wire.st_connections s.Umrs_server.Wire.st_requests
        s.Umrs_server.Wire.st_overloaded s.Umrs_server.Wire.st_timeouts
        s.Umrs_server.Wire.st_rejected;
      pf "cache hits=%d misses=%d evictions=%d queue %d/%d (hwm %d) \
          workers=%d draining=%b@."
        s.Umrs_server.Wire.st_cache_hits s.Umrs_server.Wire.st_cache_misses
        s.Umrs_server.Wire.st_cache_evictions
        s.Umrs_server.Wire.st_queue_depth s.Umrs_server.Wire.st_queue_capacity
        s.Umrs_server.Wire.st_queue_hwm
        s.Umrs_server.Wire.st_workers s.Umrs_server.Wire.st_draining;
      pf "live connections=%d loop wakeups=%d@."
        s.Umrs_server.Wire.st_live_conns s.Umrs_server.Wire.st_loop_wakeups
    end
  in
  let retries =
    Arg.(value & opt int 5 & info [ "retries" ] ~docv:"K"
           ~doc:"Connection retries with doubling backoff.")
  in
  let deadline =
    Arg.(value & opt int 0 & info [ "deadline-ms" ] ~docv:"MS"
           ~doc:"Server-side deadline for evaluate/sleep (0 = none).")
  in
  let ping = Arg.(value & flag & info [ "ping" ] ~doc:"Round-trip a nonce.") in
  let stats =
    Arg.(value & flag & info [ "stats" ] ~doc:"Print server counters.")
  in
  let want_info =
    Arg.(value & flag & info [ "info" ] ~doc:"Print the served corpus header.")
  in
  let nths =
    Arg.(value & opt_all int [] & info [ "nth" ] ~docv:"I"
           ~doc:"Fetch record I (repeatable).")
  in
  let mems =
    Arg.(value & opt_all string [] & info [ "mem" ] ~docv:"MATRIX"
           ~doc:"Membership query (repeatable).")
  in
  let ranks =
    Arg.(value & opt_all string [] & info [ "rank" ] ~docv:"MATRIX"
           ~doc:"Rank query (repeatable).")
  in
  let prefixes =
    Arg.(value & opt_all string [] & info [ "prefix" ] ~docv:"ENTRIES"
           ~doc:"Prefix range query (repeatable).")
  in
  let cgraphs =
    Arg.(value & opt_all int [] & info [ "cgraph" ] ~docv:"I"
           ~doc:"Fetch the graph of constraints of record I (repeatable).")
  in
  let eval_scheme =
    Arg.(value & opt (some string) None & info [ "evaluate" ] ~docv:"SCHEME"
           ~doc:"Evaluate a registered scheme server-side on --graph/--size.")
  in
  let sleep =
    Arg.(value & opt (some int) None & info [ "sleep-ms" ] ~docv:"MS"
           ~doc:"Hold a worker for MS milliseconds (diagnostics).")
  in
  Cmd.v
    (Cmd.info "remote"
       ~doc:"Query a running serve instance: ping, stats, corpus lookups, \
             remote evaluation.")
    Term.(const run $ addr_arg $ retries $ deadline $ ping $ stats $ want_info
          $ nths $ mems $ ranks $ prefixes $ cgraphs $ eval_scheme $ family_arg
          $ size_arg 16 $ seed_arg $ sleep)

let chaos_cmd =
  let run fault_seed crash_matrix p q d domains checkpoint_every intensities
      requests workers telemetry =
    with_telemetry telemetry @@ fun () ->
    let tmp = Filename.temp_file "umrs_chaos" "" in
    Sys.remove tmp;
    Unix.mkdir tmp 0o755;
    pf "fault seed %d (reproduce any outcome below with --fault-seed %d)@."
      fault_seed fault_seed;
    if crash_matrix then begin
      let progress ~at ~points =
        if at mod 25 = 0 then pf "crash point %d/%d...@." at points
      in
      let s =
        Umrs_chaos.Harness.crash_matrix ~domains ~checkpoint_every
          ~seed:fault_seed ~on_progress:progress ~p ~q ~d ~scratch:tmp ()
      in
      List.iter
        (fun f ->
          pf "FAILED at point %d (seed %d): %s@." f.Umrs_chaos.Harness.f_at
            f.Umrs_chaos.Harness.f_seed f.Umrs_chaos.Harness.f_detail)
        s.Umrs_chaos.Harness.s_failures;
      pf "crash matrix (%d,%d,%d) x %d domains: %d points, %d crashes, %d \
          failures@."
        p q d domains s.Umrs_chaos.Harness.s_points
        s.Umrs_chaos.Harness.s_crashes
        (List.length s.Umrs_chaos.Harness.s_failures);
      if s.Umrs_chaos.Harness.s_failures <> [] then exit 1
    end
    else begin
      let corpus = Filename.concat tmp "chaos.corpus" in
      ignore (Umrs_store.Builder.build ~p ~q ~d ~out:corpus ());
      (match Umrs_store.Query.build ~corpus () with
      | Ok _ -> ()
      | Error e ->
        Printf.eprintf "routing_lab: chaos: index build: %s\n"
          (Umrs_store.Query.error_to_string e);
        exit 1);
      let intensities =
        if intensities = [] then [ 0.02; 0.10 ] else intensities
      in
      List.iter
        (fun intensity ->
          let sock =
            Filename.concat tmp
              (Printf.sprintf "chaos_%.0f.sock" (1000. *. intensity))
          in
          match
            Umrs_chaos.Storm.run_level ~seed:fault_seed ~requests ~workers
              ~intensity ~corpus ~addr:(Umrs_server.Wire.Unix_sock sock) ()
          with
          | Error e ->
            Printf.eprintf "routing_lab: chaos: storm %.2f: %s\n" intensity e;
            exit 1
          | Ok l ->
            pf "storm %.2f: %d ok / %d degraded / %d failed, %d worker \
                crash%s, recovery p50 %.1fms p95 %.1fms (%.2fs)@."
              intensity l.Umrs_chaos.Storm.l_success
              l.Umrs_chaos.Storm.l_degraded l.Umrs_chaos.Storm.l_failed
              l.Umrs_chaos.Storm.l_worker_crashes
              (if l.Umrs_chaos.Storm.l_worker_crashes = 1 then "" else "es")
              (1e3 *. l.Umrs_chaos.Storm.l_recovery_p50)
              (1e3 *. l.Umrs_chaos.Storm.l_recovery_p95)
              l.Umrs_chaos.Storm.l_seconds)
        intensities
    end
  in
  let fault_seed =
    Arg.(value & opt int 0x5EED42 & info [ "fault-seed" ] ~docv:"N"
           ~doc:"Seed for the deterministic fault schedule; a failure \
                 reproduces from the seed it was observed under.")
  in
  let crash_matrix =
    Arg.(value & flag & info [ "crash-matrix" ]
           ~doc:"Instead of storming a live server, sweep a simulated power \
                 loss across every fault point of a checkpointed corpus \
                 build and check atomic publication + byte-identical \
                 resume at each.")
  in
  let p = Arg.(value & opt int 2 & info [ "p" ] ~doc:"Rows.") in
  let q = Arg.(value & opt int 4 & info [ "q" ] ~doc:"Columns.") in
  let d = Arg.(value & opt int 3 & info [ "d" ] ~doc:"Entry bound.") in
  let domains =
    Arg.(value & opt int 1 & info [ "domains" ] ~docv:"K"
           ~doc:"Builder domains for --crash-matrix.")
  in
  let checkpoint_every =
    Arg.(value & opt int 1024 & info [ "checkpoint-every" ] ~docv:"N"
           ~doc:"Raw matrices between checkpoints for --crash-matrix.")
  in
  let intensities =
    Arg.(value & opt_all float [] & info [ "intensity" ] ~docv:"F"
           ~doc:"Storm fault probability per fault point (repeatable; \
                 default 0.02 and 0.10).")
  in
  let requests =
    Arg.(value & opt int 300 & info [ "requests" ] ~docv:"N"
           ~doc:"Requests per storm level.")
  in
  let workers =
    Arg.(value & opt int 2 & info [ "workers" ] ~docv:"K"
           ~doc:"Server worker domains per storm level.")
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:"Fault-injection drills: storm a live server through a seeded \
             fault schedule, or sweep simulated power loss across every \
             fault point of a corpus build (--crash-matrix).")
    Term.(const run $ fault_seed $ crash_matrix $ p $ q $ d $ domains
          $ checkpoint_every $ intensities $ requests $ workers
          $ telemetry_arg)

(* ---------- cluster ---------- *)

let cluster_cmd =
  let module Cluster = Umrs_cluster.Cluster in
  let module Cl = Umrs_cluster.Client in
  let module Wire = Umrs_server.Wire in
  let serve_cmd =
    let run corpus shards dir replicas workers queue cache map_version
        kill_primaries kill_after =
      match
        Cluster.start ~corpus ~shards ~dir ~replicas ~workers
          ~queue_capacity:queue ~cache_capacity:cache ~map_version ()
      with
      | Error msg ->
        Printf.eprintf "routing_lab: cluster serve: %s\n" msg;
        exit 1
      | Ok cl ->
        pf "cluster up: %d shard%s x %d node%s (map v%d -> %s)@." shards
          (if shards = 1 then "" else "s")
          (replicas + 1)
          (if replicas = 0 then "" else "s")
          map_version (Cluster.map_path cl);
        Array.iteri
          (fun k sh ->
            pf "  shard %d: records [%d, %d) primary %s%s@." k sh.Wire.sh_lo
              sh.Wire.sh_hi
              (Wire.addr_to_string sh.Wire.sh_primary)
              (match sh.Wire.sh_replicas with
              | [] -> ""
              | rs ->
                ", replicas "
                ^ String.concat ", " (List.map Wire.addr_to_string rs)))
          (Cluster.map cl).Wire.sm_shards;
        let stop = Atomic.make false in
        let drain _ = Atomic.set stop true in
        Sys.set_signal Sys.sigterm (Sys.Signal_handle drain);
        Sys.set_signal Sys.sigint (Sys.Signal_handle drain);
        pf "SIGTERM/SIGINT drain every node and exit@.";
        (* the node-loss drill: kill the named primaries after a delay,
           under whatever live traffic the operator is running *)
        (match (kill_primaries, kill_after) with
        | [], _ -> ()
        | ks, delay ->
          ignore
            (Thread.create
               (fun () ->
                 Unix.sleepf delay;
                 List.iter
                   (fun k ->
                     if k < 0 || k >= shards then
                       Printf.eprintf
                         "routing_lab: cluster serve: no shard %d to kill\n" k
                     else begin
                       pf "drill: killing primary of shard %d@." k;
                       Cluster.kill_primary cl k
                     end)
                   ks)
               ()));
        while not (Atomic.get stop) do
          try Unix.sleepf 0.2
          with Unix.Unix_error (Unix.EINTR, _, _) -> ()
        done;
        Cluster.wait cl;
        pf "cluster drained (%d worker crash%s)@."
          (Cluster.worker_crashes cl)
          (if Cluster.worker_crashes cl = 1 then "" else "es")
    in
    let corpus =
      Arg.(required & opt (some string) None & info [ "corpus" ] ~docv:"FILE"
             ~doc:"Corpus to shard and serve.")
    in
    let shards =
      Arg.(value & opt int 3 & info [ "shards" ] ~docv:"N"
             ~doc:"Number of key-range shards.")
    in
    let dir =
      Arg.(required & opt (some string) None & info [ "dir" ] ~docv:"DIR"
             ~doc:"Directory for the pieces, the shard-map file and every \
                   node's unix socket.")
    in
    let replicas =
      Arg.(value & opt int 1 & info [ "replicas" ] ~docv:"R"
             ~doc:"Failover nodes per shard beyond the primary.")
    in
    let workers =
      Arg.(value & opt int 1 & info [ "workers" ] ~docv:"K"
             ~doc:"Worker domains per node.")
    in
    let queue =
      Arg.(value & opt int 64 & info [ "queue" ] ~docv:"N"
             ~doc:"Bounded job queue per node.")
    in
    let cache =
      Arg.(value & opt int 8 & info [ "cache" ] ~docv:"N"
             ~doc:"Evaluation LRU entries per node.")
    in
    let map_version =
      Arg.(value & opt int 1 & info [ "map-version" ] ~docv:"V"
             ~doc:"Topology version stamped into the shard map.")
    in
    let kill_primaries =
      Arg.(value & opt_all int [] & info [ "kill-primary" ] ~docv:"K"
             ~doc:"Node-loss drill: kill shard K's primary after \
                   --kill-after seconds (repeatable).")
    in
    let kill_after =
      Arg.(value & opt float 5.0 & info [ "kill-after" ] ~docv:"S"
             ~doc:"Delay before the --kill-primary drill fires.")
    in
    Cmd.v
      (Cmd.info "serve"
         ~doc:"Shard a corpus and serve it from a multi-node cluster: one \
               primary plus replicas per key range, shard map on disk and \
               over the wire, optional node-loss drill.")
      Term.(const run $ corpus $ shards $ dir $ replicas $ workers $ queue
            $ cache $ map_version $ kill_primaries $ kill_after)
  in
  let query_cmd =
    let fail_client ctx e =
      Printf.eprintf "routing_lab: cluster query: %s: %s\n" ctx
        (Umrs_client.error_to_string e);
      exit 1
    in
    let ok ctx = function Ok v -> v | Error e -> fail_client ctx e in
    let run addr ping want_info want_map nths mems ranks prefixes cgraphs
        want_stats =
      let c = ok "fetch" (Cl.fetch addr) in
      Fun.protect ~finally:(fun () -> Cl.close c) @@ fun () ->
      if ping then begin
        ok "ping" (Cl.ping c);
        pf "ping: every shard group answered@."
      end;
      if want_info then begin
        let h = ok "info" (Cl.corpus_info c) in
        pf "corpus: p=%d q=%d d=%d count=%d checksum=%016Lx@."
          h.Umrs_store.Corpus.p h.Umrs_store.Corpus.q h.Umrs_store.Corpus.d
          h.Umrs_store.Corpus.count h.Umrs_store.Corpus.checksum
      end;
      if want_map then begin
        let m = Cl.map c in
        pf "shard map v%d: %d records over %d shard%s@." m.Wire.sm_version
          m.Wire.sm_count
          (Array.length m.Wire.sm_shards)
          (if Array.length m.Wire.sm_shards = 1 then "" else "s");
        Array.iteri
          (fun k sh ->
            pf "  shard %d: [%d, %d) primary %s (%d replica%s)@." k
              sh.Wire.sh_lo sh.Wire.sh_hi
              (Wire.addr_to_string sh.Wire.sh_primary)
              (List.length sh.Wire.sh_replicas)
              (if List.length sh.Wire.sh_replicas = 1 then "" else "s"))
          m.Wire.sm_shards
      end;
      List.iter
        (fun i ->
          let m = ok "nth" (Cl.nth c i) in
          pf "nth %d: %s@." i (Matrix.to_string m))
        nths;
      List.iter
        (fun s ->
          pf "mem %s: %b@." s (ok "mem" (Cl.mem c (Matrix.of_string s))))
        mems;
      List.iter
        (fun s ->
          pf "rank %s: %d@." s (ok "rank" (Cl.rank c (Matrix.of_string s))))
        ranks;
      List.iter
        (fun s ->
          let prefix =
            String.split_on_char ' '
              (String.map (function ',' -> ' ' | c -> c) s)
            |> List.filter (fun f -> f <> "")
            |> List.map int_of_string |> Array.of_list
          in
          let lo, hi = ok "prefix" (Cl.range_prefix c prefix) in
          pf "prefix [%s]: records [%d, %d) - %d matching@." s lo hi (hi - lo))
        prefixes;
      List.iter
        (fun i ->
          let t = ok "cgraph" (Cl.cgraph c i) in
          pf "cgraph %d:@." i;
          pf "%a@." Graph.pp t.Cgraph.graph)
        cgraphs;
      if want_stats then begin
        let s = Cl.stats c in
        pf "routed calls=%d failovers=%d map refreshes=%d@." s.Cl.s_calls
          s.Cl.s_failovers s.Cl.s_refreshes
      end
    in
    let ping =
      Arg.(value & flag & info [ "ping" ]
             ~doc:"Round-trip a nonce through every shard group.")
    in
    let want_info =
      Arg.(value & flag & info [ "info" ]
             ~doc:"Print the unsharded corpus's identity (from the map, no \
                   round-trip).")
    in
    let want_map =
      Arg.(value & flag & info [ "map" ] ~doc:"Print the fetched shard map.")
    in
    let nths =
      Arg.(value & opt_all int [] & info [ "nth" ] ~docv:"I"
             ~doc:"Fetch record I by global rank (repeatable).")
    in
    let mems =
      Arg.(value & opt_all string [] & info [ "mem" ] ~docv:"MATRIX"
             ~doc:"Membership query, routed by key (repeatable).")
    in
    let ranks =
      Arg.(value & opt_all string [] & info [ "rank" ] ~docv:"MATRIX"
             ~doc:"Global rank query, routed by key (repeatable).")
    in
    let prefixes =
      Arg.(value & opt_all string [] & info [ "prefix" ] ~docv:"ENTRIES"
             ~doc:"Prefix range query; scatters over the owning shards and \
                   merges (repeatable).")
    in
    let cgraphs =
      Arg.(value & opt_all int [] & info [ "cgraph" ] ~docv:"I"
             ~doc:"Graph of constraints of record I (repeatable).")
    in
    let want_stats =
      Arg.(value & flag & info [ "stats" ]
             ~doc:"Print client routing counters (calls, failovers, \
                   refreshes).")
    in
    Cmd.v
      (Cmd.info "query"
         ~doc:"Query a cluster through its shard map: bootstrap from any \
               node, route by rank or key, scatter prefix ranges, fail \
               over to replicas.")
      Term.(const run $ addr_arg $ ping $ want_info $ want_map $ nths $ mems
            $ ranks $ prefixes $ cgraphs $ want_stats)
  in
  (* write the resolved address where scripts (and the bench harness)
     can find it — port 0 means only the process knows its port *)
  let write_addr_file path addr =
    match path with
    | None -> ()
    | Some p ->
      let oc = open_out p in
      output_string oc (Wire.addr_to_string addr);
      close_out oc
  in
  let addr_file_arg =
    Arg.(value & opt (some string) None & info [ "addr-file" ] ~docv:"FILE"
           ~doc:"Write the resolved listening address (unix:PATH or \
                 tcp:HOST:PORT) to FILE once bound.")
  in
  let listen_arg =
    Arg.(value & opt addr_conv (Umrs_server.Wire.Tcp ("127.0.0.1", 0))
         & info [ "listen" ] ~docv:"ADDR"
             ~doc:"Listening address (default tcp:127.0.0.1:0 — the kernel \
                   picks a port; see --addr-file).")
  in
  let heartbeat_arg =
    Arg.(value & opt int 500 & info [ "heartbeat-ms" ] ~docv:"MS"
           ~doc:"Heartbeat interval in milliseconds.")
  in
  let run_until_signal () =
    let stop = Atomic.make false in
    let drain _ = Atomic.set stop true in
    Sys.set_signal Sys.sigterm (Sys.Signal_handle drain);
    Sys.set_signal Sys.sigint (Sys.Signal_handle drain);
    while not (Atomic.get stop) do
      try Unix.sleepf 0.2 with Unix.Unix_error (Unix.EINTR, _, _) -> ()
    done
  in
  let coordinator_cmd =
    let module Co = Umrs_cluster.Coordinator in
    let run corpus dir listen shards heartbeat_ms miss workers addr_file
        telemetry =
      with_telemetry telemetry @@ fun () ->
      let cfg =
        { (Co.default_config ~dir ~corpus ~listen) with
          Co.shards; heartbeat = float_of_int heartbeat_ms /. 1000.0;
          miss_limit = miss; workers }
      in
      match Co.start cfg with
      | Error msg ->
        Printf.eprintf "routing_lab: cluster coordinator: %s\n" msg;
        exit 1
      | Ok co ->
        write_addr_file addr_file (Co.addr co);
        pf "coordinator up at %s: %d shard%s, beat %dms, dead after %d \
            missed (map -> %s)@."
          (Wire.addr_to_string (Co.addr co))
          shards
          (if shards = 1 then "" else "s")
          heartbeat_ms miss (Co.map_path co);
        pf "SIGTERM/SIGINT drain and exit@.";
        run_until_signal ();
        Co.shutdown co;
        Co.wait co;
        pf "coordinator drained: topology v%d, %d death%s, %d promotion%s@."
          (Co.version co) (Co.deaths co)
          (if Co.deaths co = 1 then "" else "s")
          (Co.promotions co)
          (if Co.promotions co = 1 then "" else "s")
    in
    let corpus =
      Arg.(required & opt (some string) None & info [ "corpus" ] ~docv:"FILE"
             ~doc:"The full unsharded corpus the cluster serves.")
    in
    let dir =
      Arg.(required & opt (some string) None & info [ "dir" ] ~docv:"DIR"
             ~doc:"Directory for the shard-map file (swept of stale \
                   sockets/tempfiles on start).")
    in
    let shards =
      Arg.(value & opt int 2 & info [ "shards" ] ~docv:"N"
             ~doc:"Initial shard count when no map file exists; an existing \
                   map's (possibly resharded) topology is adopted instead.")
    in
    let miss =
      Arg.(value & opt int 4 & info [ "miss" ] ~docv:"N"
             ~doc:"Heartbeats a node may miss before it is declared dead.")
    in
    let workers =
      Arg.(value & opt int 2 & info [ "workers" ] ~docv:"K"
             ~doc:"Worker domains for the coordinator's own data plane.")
    in
    Cmd.v
      (Cmd.info "coordinator"
         ~doc:"Run the cluster coordinator: nodes join it, heartbeat \
               against it, and receive resharding work from it; it \
               publishes the versioned shard map and serves the full \
               corpus as the donor of last resort.")
      Term.(const run $ corpus $ dir $ listen_arg $ shards $ heartbeat_arg
            $ miss $ workers $ addr_file_arg $ telemetry_arg)
  in
  let join_cmd =
    let module Ms = Umrs_cluster.Membership in
    let run coordinator dir listen advertise heartbeat_ms workers addr_file
        telemetry =
      with_telemetry telemetry @@ fun () ->
      let cfg =
        { (Ms.default_config ~coordinator ~dir ~listen) with
          Ms.advertise; heartbeat = float_of_int heartbeat_ms /. 1000.0;
          workers }
      in
      match Ms.start cfg with
      | Error msg ->
        Printf.eprintf "routing_lab: cluster join: %s\n" msg;
        exit 1
      | Ok node ->
        write_addr_file addr_file (Ms.self_addr node);
        (match Ms.range node with
        | Some (lo, hi) ->
          pf "joined as %s: records [%d, %d), checksum %016Lx, %d catch-up \
              fetch%s@."
            (Wire.addr_to_string (Ms.self_addr node))
            lo hi (Ms.checksum node) (Ms.catchups node)
            (if Ms.catchups node = 1 then "" else "es")
        | None ->
          pf "joined as %s@." (Wire.addr_to_string (Ms.self_addr node)));
        pf "SIGTERM/SIGINT leave gracefully and exit@.";
        run_until_signal ();
        Ms.stop node;
        Ms.wait node;
        pf "node left (topology v%d)@." (Ms.version node)
    in
    let coordinator =
      Arg.(required & opt (some addr_conv) None
           & info [ "coordinator" ] ~docv:"ADDR"
               ~doc:"The coordinator's address.")
    in
    let dir =
      Arg.(required & opt (some string) None & info [ "dir" ] ~docv:"DIR"
             ~doc:"This node's data directory: piece files live here, and \
                   a crashed predecessor's sockets/tempfiles are swept on \
                   start. A returning node re-uses a piece that still \
                   matches the canonical checksum and re-fetches only what \
                   went stale.")
    in
    let advertise =
      Arg.(value & opt (some addr_conv) None
           & info [ "advertise" ] ~docv:"ADDR"
               ~doc:"Address to register with the coordinator (what other \
                     processes connect to); default: the resolved listen \
                     address.")
    in
    let workers =
      Arg.(value & opt int 2 & info [ "workers" ] ~docv:"K"
             ~doc:"Worker domains for this node's data plane.")
    in
    Cmd.v
      (Cmd.info "join"
         ~doc:"Start a node and join it to a running coordinator: it is \
               assigned a key range, streams (or re-uses) its piece, \
               enters the map, and heartbeats; killed and restarted with \
               the same --dir it catches up instead of re-fetching \
               everything.")
      Term.(const run $ coordinator $ dir $ listen_arg $ advertise
            $ heartbeat_arg $ workers $ addr_file_arg $ telemetry_arg)
  in
  let with_coordinator ctx addr f =
    match Umrs_client.connect addr with
    | Error e ->
      Printf.eprintf "routing_lab: cluster %s: %s\n" ctx
        (Umrs_client.error_to_string e);
      exit 1
    | Ok c -> Fun.protect ~finally:(fun () -> Umrs_client.close c) (fun () -> f c)
  in
  let reshard_cmd =
    let run addr split merge =
      let op =
        match (split, merge) with
        | Some k, None -> Wire.Split k
        | None, Some k -> Wire.Merge k
        | _ ->
          Printf.eprintf
            "routing_lab: cluster reshard: exactly one of --split or \
             --merge\n";
          exit 2
      in
      with_coordinator "reshard" addr @@ fun c ->
      match Umrs_client.reshard c op with
      | Ok msg -> pf "%s@." msg
      | Error e ->
        Printf.eprintf "routing_lab: cluster reshard: %s\n"
          (Umrs_client.error_to_string e);
        exit 1
    in
    let split =
      Arg.(value & opt (some int) None & info [ "split" ] ~docv:"K"
             ~doc:"Split shard K's key range in half; a poached node \
                   streams the upper half while the donor double-serves.")
    in
    let merge =
      Arg.(value & opt (some int) None & info [ "merge" ] ~docv:"K"
             ~doc:"Merge shard K with shard K+1.")
    in
    Cmd.v
      (Cmd.info "reshard"
         ~doc:"Ask a live coordinator to split or merge a key range online \
               — no request window is lost during the handoff.")
      Term.(const run $ addr_arg $ split $ merge)
  in
  let status_cmd =
    let run addr =
      with_coordinator "status" addr @@ fun c ->
      match Umrs_client.cluster_status c with
      | Error e ->
        Printf.eprintf "routing_lab: cluster status: %s\n"
          (Umrs_client.error_to_string e);
        exit 1
      | Ok (version, published, members) ->
        pf "topology v%d (%s)@." version
          (if published then "published" else "NOT published - degraded");
        List.iter
          (fun mi ->
            pf "  %-28s shard %2s  %-7s %s%s beat %.2fs ago  piece %016Lx@."
              (Wire.addr_to_string mi.Wire.mi_addr)
              (if mi.Wire.mi_shard < 0 then "-"
               else string_of_int mi.Wire.mi_shard)
              (match mi.Wire.mi_state with
              | Wire.Joining -> "joining"
              | Wire.Ready -> "ready"
              | Wire.Dead -> "dead")
              (if mi.Wire.mi_in_map then "in-map " else "out    ")
              (if mi.Wire.mi_primary then "primary " else "        ")
              mi.Wire.mi_beat_age mi.Wire.mi_checksum)
          (List.sort
             (fun a b -> compare a.Wire.mi_shard b.Wire.mi_shard)
             members)
    in
    Cmd.v
      (Cmd.info "status"
         ~doc:"Print a coordinator's membership table: every node's shard, \
               state, map presence and heartbeat age.")
      Term.(const run $ addr_arg)
  in
  Cmd.group
    (Cmd.info "cluster"
       ~doc:"Multi-node sharded serving: split a corpus across key-range \
             shards with replicas, or run a real multi-process membership \
             cluster (coordinator + joining nodes) with heartbeat failure \
             detection, online resharding and replica catch-up.")
    [ serve_cmd; query_cmd; coordinator_cmd; join_cmd; reshard_cmd;
      status_cmd ]

let () =
  let doc =
    "Laboratory for 'Local Memory Requirement of Universal Routing Schemes' \
     (Fraigniaud & Gavoille, 1996)."
  in
  let info = Cmd.info "routing_lab" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            evaluate_cmd; route_cmd; simulate_cmd; canon_cmd; enumerate_cmd;
            cgraph_cmd; lemma1_cmd; theorem1_cmd; reconstruct_cmd; figure1_cmd;
            table1_cmd; table2_cmd; orbit_cmd; burnside_cmd; estimate_cmd;
            dot_cmd; global_cmd; optimize_cmd; deadlock_cmd; save_cmd;
            check_cmd; compare_cmd; broadcast_cmd; corpus_cmd; serve_cmd;
            remote_cmd; cluster_cmd; chaos_cmd; bench_cmd;
          ]))
