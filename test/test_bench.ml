(* Umrs_bench: the shared benchmark library behind every smoke.

   Four layers, mirroring the module stack:

   - Quantile against a naive sorted oracle (seeded property via Gen,
     plus the deterministic small-n edges: n = 1, n = 2, all ties);
   - Report: umrs/bench/v1 encode/decode round-trip on random reports,
     and rejection of malformed input;
   - History: append-then-load, and tolerance of a corrupt or torn
     trailing line (skipped and counted, never fatal);
   - Gate: every comparator verdict (pass, improved, regression,
     missing-baseline, tiny-timing floor, vanished bench, per-metric
     threshold override, custom config), then an end-to-end run: a
     real measured baseline saved to disk, a deliberately slowed rerun
     that must fail with the delta table, and a same-speed rerun that
     must pass. *)

module B = Umrs_bench

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* ---------- Quantile vs naive oracle ---------- *)

let oracle a p =
  let s = Array.copy a in
  Array.sort compare s;
  let n = Array.length s in
  let rank = Stdlib.max 1 (int_of_float (ceil (p /. 100. *. float_of_int n))) in
  s.(rank - 1)

let print_sample a =
  "["
  ^ String.concat " " (List.map string_of_float (Array.to_list a))
  ^ "]"

let shrink_sample a =
  let n = Array.length a in
  if n <= 1 then Seq.empty else Seq.return (Array.sub a 0 (n - 1))

(* Values from a 7-element pool: samples of any interesting size are
   full of ties, the case ad-hoc percentile code kept getting wrong. *)
let tied_sample =
  Gen.make ~print:print_sample ~shrink:shrink_sample (fun st ->
      let n = 1 + Random.State.int st 50 in
      Array.init n (fun _ -> float_of_int (Random.State.int st 7) /. 4.))

let continuous_sample =
  Gen.make ~print:print_sample ~shrink:shrink_sample (fun st ->
      let n = 1 + Random.State.int st 50 in
      Array.init n (fun _ -> Random.State.float st 1000.))

let probe_ps = [ 0.; 1.; 12.5; 25.; 50.; 75.; 90.; 95.; 99.; 100. ]

let matches_oracle a =
  let t = B.Quantile.of_array a in
  let n = Array.length a in
  List.for_all (fun p -> B.Quantile.value t p = oracle a p) probe_ps
  && B.Quantile.count t = n
  && B.Quantile.min t = oracle a 0.
  && B.Quantile.max t = oracle a 100.
  && B.Quantile.p50 t = oracle a 50.
  && B.Quantile.p95 t = oracle a 95.
  && B.Quantile.p99 t = oracle a 99.
  && Float.abs (B.Quantile.total t -. Array.fold_left ( +. ) 0. a)
     <= 1e-9 *. float_of_int n
  && Float.abs (B.Quantile.mean t -. (B.Quantile.total t /. float_of_int n))
     <= 1e-12

let quantile_edges () =
  (* n = 1: every percentile is the sample *)
  let one = B.Quantile.of_list [ 42. ] in
  List.iter
    (fun p -> Alcotest.(check (float 0.)) "n=1" 42. (B.Quantile.value one p))
    probe_ps;
  (* n = 2: nearest-rank median is the SMALLER element *)
  let two = B.Quantile.of_array [| 3.; 1. |] in
  Alcotest.(check (float 0.)) "n=2 p0" 1. (B.Quantile.value two 0.);
  Alcotest.(check (float 0.)) "n=2 p50" 1. (B.Quantile.p50 two);
  Alcotest.(check (float 0.)) "n=2 p51" 3. (B.Quantile.value two 51.);
  Alcotest.(check (float 0.)) "n=2 p95" 3. (B.Quantile.p95 two);
  Alcotest.(check (float 0.)) "n=2 p100" 3. (B.Quantile.max two);
  (* all ties *)
  let ties = B.Quantile.of_array [| 2.; 2.; 2.; 2.; 2. |] in
  List.iter
    (fun p -> Alcotest.(check (float 0.)) "ties" 2. (B.Quantile.value ties p))
    probe_ps;
  (* input is copied, not sorted in place *)
  let a = [| 9.; 1.; 5. |] in
  ignore (B.Quantile.of_array a);
  check_bool "input untouched" true (a = [| 9.; 1.; 5. |]);
  (* domain errors *)
  let raises f = match f () with _ -> false | exception Invalid_argument _ -> true in
  check_bool "empty rejected" true (raises (fun () -> B.Quantile.of_array [||]));
  check_bool "p < 0 rejected" true (raises (fun () -> B.Quantile.value two (-1.)));
  check_bool "p > 100 rejected" true (raises (fun () -> B.Quantile.value two 100.5))

(* ---------- Report round-trip ---------- *)

(* Random reports whose floats are short decimals (k/1000, k/10), so an
   exact [=] after encode -> print -> parse -> decode is the contract:
   the v1 printer must not lose them. *)
let report_arb =
  let print (r : B.Report.t) = B.Json.to_string (B.Report.to_json r) in
  Gen.make ~print (fun st ->
      let milli st =
        float_of_int (Random.State.int st 2_000_000 - 1_000_000) /. 1000.
      in
      let metric st i =
        B.Report.metric
          ~unit_:(List.nth [ "s"; "1/s"; "B/s"; "x"; "" ] (Random.State.int st 5))
          ~better:(if Random.State.bool st then B.Report.Higher else B.Report.Lower)
          ~gated:(Random.State.bool st)
          ?threshold:
            (if Random.State.bool st then
               Some (float_of_int (1 + Random.State.int st 40) /. 10.)
             else None)
          (Printf.sprintf "m%d" i) (milli st)
      in
      let bench st i =
        { B.Report.b_name = Printf.sprintf "t/bench%d" i;
          b_iters = Random.State.int st 100_000;
          b_warmup = Random.State.int st 10;
          b_seconds = Float.abs (milli st);
          b_metrics = List.init (Random.State.int st 4) (metric st) }
      in
      { B.Report.r_suite = "t";
        r_created = float_of_int (1_700_000_000 + Random.State.int st 100_000);
        r_commit = "cafebabe";
        r_machine =
          [ ("hostname", B.Json.Str "box"); ("cores", B.Json.Num 8.);
            ("os", B.Json.Str "Unix"); ("ocaml", B.Json.Str "5.1.1");
            ("word_size", B.Json.Num 64.) ];
        r_context = [ ("seed", B.Json.Num (float_of_int (Random.State.int st 1000))) ];
        r_benches = List.init (1 + Random.State.int st 3) (bench st) })

let round_trips r =
  match B.Json.parse (B.Json.to_string (B.Report.to_json r)) with
  | Error _ -> false
  | Ok j -> (
    match B.Report.of_json j with Ok r' -> r' = r | Error _ -> false)

let report_rejects () =
  let bad j = match B.Report.of_json j with Ok _ -> false | Error _ -> true in
  check_bool "empty object" true (bad (B.Json.Obj []));
  check_bool "wrong schema" true
    (bad (B.Json.Obj [ ("schema", B.Json.Str "umrs/bench/v0") ]));
  check_bool "garbage text" true
    (match B.Json.parse "[1," with Ok _ -> false | Error _ -> true);
  check_bool "missing file" true
    (match B.Report.load ~path:"/nonexistent/umrs.json" with
    | Ok _ -> false
    | Error _ -> true);
  (* the live constructor stamps a well-formed envelope *)
  let r = B.Report.make ~suite:"t" [] in
  check_bool "make round-trips" true (round_trips r);
  check_bool "make stamps schema" true
    (B.Json.member "schema" (B.Report.to_json r)
    = Some (B.Json.Str B.Report.schema))

(* ---------- History ---------- *)

let mk_report ?(commit = "c0ffee") ?(suite = "t") benches =
  { B.Report.r_suite = suite; r_created = 1_700_000_000.; r_commit = commit;
    r_machine = []; r_context = []; r_benches = benches }

let mk_bench ?(seconds = 0.5) name metrics =
  { B.Report.b_name = name; b_iters = 10; b_warmup = 1; b_seconds = seconds;
    b_metrics = metrics }

let history_append_load () =
  let path = Filename.temp_file "umrs_bench_hist" ".jsonl" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with _ -> ())
  @@ fun () ->
  let entries () = B.History.load ~path () in
  check_bool "empty file loads clean" true (entries () = ([], 0));
  B.History.append ~path
    (mk_report ~commit:"aaa"
       [ mk_bench "t/a" [ B.Report.metric "rps" 100.5 ];
         mk_bench "t/b" [ B.Report.metric "rps" 7. ] ]);
  B.History.append ~path
    (mk_report ~commit:"bbb" [ mk_bench "t/a" [ B.Report.metric "rps" 120. ] ]);
  let es, skipped = entries () in
  check_int "three lines" 3 (List.length es);
  check_int "no skips" 0 skipped;
  check_bool "order and fields survive" true
    (List.map (fun e -> (e.B.History.h_commit, e.B.History.h_bench)) es
    = [ ("aaa", "t/a"); ("aaa", "t/b"); ("bbb", "t/a") ]);
  check_bool "metric values survive" true
    ((List.hd es).B.History.h_metrics = [ ("rps", 100.5) ]);
  (* a wrong-shape line and a torn trailing line: skipped, counted,
     and everything parsable still loads *)
  let oc = open_out_gen [ Open_append ] 0o644 path in
  output_string oc "{\"nope\": true}\n";
  output_string oc "{\"ts\": 1, \"commit\": \"torn-by-power-lo";
  close_out oc;
  let es, skipped = entries () in
  check_int "parsable lines kept" 3 (List.length es);
  check_int "corrupt lines counted" 2 skipped

(* ---------- Gate verdicts ---------- *)

let sec ?threshold v = B.Report.metric ~unit_:"s" ~gated:true ?threshold "lat" v
let rate ?threshold v =
  B.Report.metric ~unit_:"1/s" ~better:B.Report.Higher ~gated:true ?threshold
    "rps" v

let find_row res bench metric =
  List.find
    (fun r -> r.B.Gate.g_bench = bench && r.B.Gate.g_metric = metric)
    res.B.Gate.rows

let verdict_of base cur =
  let res =
    B.Gate.compare_reports
      ~baseline:(mk_report [ mk_bench "t/x" [ base ] ])
      (mk_report [ mk_bench "t/x" [ cur ] ])
  in
  ((find_row res "t/x" cur.B.Report.m_name).B.Gate.g_verdict, B.Gate.ok res)

let gate_verdicts () =
  let is v = ( = ) (v : B.Gate.verdict) in
  (* lower-better seconds, default 25% threshold, above the 5ms floor *)
  let v, ok = verdict_of (sec 0.100) (sec 0.110) in
  check_bool "within threshold: pass" true (is B.Gate.Pass v && ok);
  let v, ok = verdict_of (sec 0.100) (sec 0.080) in
  check_bool "faster: improved" true (is B.Gate.Improved v && ok);
  let v, ok = verdict_of (sec 0.100) (sec 0.200) in
  check_bool "2x slower: regressed" true (is B.Gate.Regressed v && not ok);
  (* higher-better rate *)
  let v, ok = verdict_of (rate 1000.) (rate 600.) in
  check_bool "rate collapse: regressed" true (is B.Gate.Regressed v && not ok);
  let v, ok = verdict_of (rate 1000.) (rate 1400.) in
  check_bool "rate up: improved" true (is B.Gate.Improved v && ok);
  (* tiny-timing floor: a 4x swing under 5ms is scheduler noise *)
  let v, ok = verdict_of (sec 0.001) (sec 0.004) in
  check_bool "under floor: skipped" true (is B.Gate.Floor_skipped v && ok);
  (* ...but only for seconds-valued metrics *)
  let v, _ = verdict_of (rate 0.001) (rate 0.004) in
  check_bool "floor ignores rates" true (is B.Gate.Improved v);
  (* per-metric threshold override: +80% is fine under a 100% gate *)
  let v, ok = verdict_of (sec ~threshold:1.0 0.100) (sec ~threshold:1.0 0.180) in
  check_bool "override loosens" true (is B.Gate.Pass v && ok);
  let row =
    let res =
      B.Gate.compare_reports
        ~baseline:(mk_report [ mk_bench "t/x" [ sec ~threshold:1.0 0.100 ] ])
        (mk_report [ mk_bench "t/x" [ sec ~threshold:1.0 0.180 ] ])
    in
    find_row res "t/x" "lat"
  in
  check_bool "row reports the override" true (row.B.Gate.g_threshold = 1.0);
  (* ungated metrics never produce rows *)
  let res =
    B.Gate.compare_reports
      ~baseline:(mk_report [ mk_bench "t/x" [ B.Report.metric "lat" 1. ] ])
      (mk_report [ mk_bench "t/x" [ B.Report.metric "lat" 99. ] ])
  in
  check_bool "ungated invisible" true (res.B.Gate.rows = [] && B.Gate.ok res);
  (* custom config: tighter threshold, floor disabled *)
  let config = { B.Gate.threshold = 0.05; floor_seconds = 0.0 } in
  let res =
    B.Gate.compare_reports ~config
      ~baseline:(mk_report [ mk_bench "t/x" [ sec 0.001 ] ])
      (mk_report [ mk_bench "t/x" [ sec 0.0012 ] ])
  in
  check_bool "custom config bites" true
    ((find_row res "t/x" "lat").B.Gate.g_verdict = B.Gate.Regressed)

let gate_missing_and_vanished () =
  (* a gated bench the baseline lacks: reported, never fatal, so a PR
     can add a bench and its baseline in one change *)
  let res =
    B.Gate.compare_reports
      ~baseline:(mk_report [ mk_bench "t/old" [ sec 0.1 ] ])
      (mk_report [ mk_bench "t/old" [ sec 0.1 ]; mk_bench "t/new" [ sec 9. ] ])
  in
  let row = find_row res "t/new" "lat" in
  check_bool "missing baseline verdict" true
    (row.B.Gate.g_verdict = B.Gate.Missing_baseline
    && row.B.Gate.g_base = None);
  check_bool "missing baseline not fatal" true (B.Gate.ok res);
  (* a baseline bench absent from the run IS fatal: deleting a bench
     must force a baseline refresh, not silently disarm its gate *)
  let res =
    B.Gate.compare_reports
      ~baseline:
        (mk_report [ mk_bench "t/kept" [ sec 0.1 ]; mk_bench "t/gone" [ sec 0.1 ] ])
      (mk_report [ mk_bench "t/kept" [ sec 0.1 ] ])
  in
  check_bool "vanished bench fatal" true
    ((not (B.Gate.ok res)) && res.B.Gate.vanished = [ "t/gone" ]);
  check_bool "vanished named in summary" true
    (contains (B.Gate.render res) "VANISHED"
    && contains (B.Gate.render res) "t/gone")

(* ---------- Harness registry ---------- *)

let harness_registry () =
  B.Harness.clear ();
  let budget =
    { B.Harness.warmup = 2; min_iters = 4; max_iters = 4; max_seconds = 1.0 }
  in
  let calls_a = ref 0 and calls_b = ref 0 and calls_old = ref 0 in
  B.Harness.register ~name:"t/a" ~budget (fun () -> incr calls_old);
  (* re-registering a name replaces the entry *)
  B.Harness.register ~name:"t/a" ~budget ~items_per_iter:100. (fun () ->
      incr calls_a);
  B.Harness.register ~name:"t/b" ~budget ~gate_time:false (fun () ->
      incr calls_b);
  let r = B.Harness.run_all ~suite:"t" () in
  B.Harness.clear ();
  check_int "old entry replaced" 0 !calls_old;
  check_int "a: warmup + iters" 6 !calls_a;
  check_int "b: warmup + iters" 6 !calls_b;
  check_bool "both benches present in order" true
    (List.map (fun b -> b.B.Report.b_name) r.B.Report.r_benches
    = [ "t/a"; "t/b" ]);
  let a = Option.get (B.Report.find_bench r "t/a") in
  check_int "measured iters recorded" 4 a.B.Report.b_iters;
  check_int "warmup recorded" 2 a.B.Report.b_warmup;
  let p50 = Option.get (B.Report.find_metric a "seconds_p50") in
  check_bool "seconds_p50 gated by default" true p50.B.Report.m_gated;
  check_bool "items_per_sec emitted ungated" true
    (match B.Report.find_metric a "items_per_sec" with
    | Some m -> (not m.B.Report.m_gated) && m.B.Report.m_better = B.Report.Higher
    | None -> false);
  let b = Option.get (B.Report.find_bench r "t/b") in
  check_bool "gate_time:false respected" true
    (match B.Report.find_metric b "seconds_p50" with
    | Some m -> not m.B.Report.m_gated
    | None -> false)

(* ---------- end-to-end: measured baseline vs slowed rerun ---------- *)

let spin seconds () =
  let t0 = B.Clock.now_ns () in
  while B.Clock.since_s t0 < seconds do
    ignore (Sys.opaque_identity 0)
  done

(* Threshold 100% instead of the default 25%: a busy-wait's p50 can
   legitimately wobble tens of percent on a loaded CI box, and this
   test must never flake. The 6x-slowed run lands at +500%, far past
   either gate; the same-speed rerun stays far under. *)
let e2e_measure s =
  let budget =
    { B.Harness.warmup = 1; min_iters = 3; max_iters = 3; max_seconds = 5.0 }
  in
  mk_report
    [ B.Harness.bench_of_measured ~name:"e2e/spin" ~threshold:1.0
        (B.Harness.measure ~budget (spin s)) ]

let e2e_gate () =
  let path = Filename.temp_file "umrs_bench_base" ".json" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with _ -> ())
  @@ fun () ->
  B.Report.save ~path (e2e_measure 0.008);
  let baseline =
    match B.Report.load ~path with
    | Ok r -> r
    | Error e -> Alcotest.failf "baseline load: %s" e
  in
  (* deliberately slowed: 6x the work must trip the gate *)
  let res = B.Gate.compare_reports ~baseline (e2e_measure 0.048) in
  check_bool "slowed run fails the gate" false (B.Gate.ok res);
  let row = find_row res "e2e/spin" "seconds_p50" in
  check_bool "verdict is regressed" true
    (row.B.Gate.g_verdict = B.Gate.Regressed);
  check_bool "delta is a large slowdown" true (row.B.Gate.g_delta_pct > 150.);
  let table = B.Gate.render res in
  check_bool "table names the bench" true (contains table "e2e/spin");
  check_bool "table shouts the verdict" true (contains table "REGRESSED");
  check_bool "summary says FAILED" true (contains table "gate FAILED");
  check_bool "markdown bolds the regression" true
    (contains (B.Gate.render_markdown res) "**REGRESSED**");
  (* the same workload again: within threshold, the gate passes *)
  let res = B.Gate.compare_reports ~baseline (e2e_measure 0.008) in
  check_bool "within-threshold rerun passes" true (B.Gate.ok res);
  check_bool "summary says OK" true (contains (B.Gate.render res) "gate OK")

let suite =
  [ Gen.prop "quantile matches oracle (ties)" tied_sample matches_oracle;
    Gen.prop "quantile matches oracle (continuous)" continuous_sample
      matches_oracle;
    Alcotest.test_case "quantile small-n edges" `Quick quantile_edges;
    Gen.prop ~count:50 "report round-trips" report_arb round_trips;
    Alcotest.test_case "report rejects malformed" `Quick report_rejects;
    Alcotest.test_case "history append/load + corrupt tail" `Quick
      history_append_load;
    Alcotest.test_case "gate verdicts" `Quick gate_verdicts;
    Alcotest.test_case "gate missing/vanished benches" `Quick
      gate_missing_and_vanished;
    Alcotest.test_case "harness registry" `Quick harness_registry;
    Alcotest.test_case "e2e slowed run trips the gate" `Quick e2e_gate ]
