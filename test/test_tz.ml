open Umrs_graph
open Umrs_routing
open Helpers

(* ---------- delivery and the stretch-3 guarantee ---------- *)

let test_delivers_petersen () =
  let b = Tz_scheme.build (Generators.petersen ()) in
  check_true "delivers" (Routing_function.delivers_all b.Scheme.rf);
  check_true "stretch <= 3"
    (Routing_function.stretch_at_most b.Scheme.rf ~num:3 ~den:1)

let test_extreme_rates () =
  let g = Generators.cycle 12 in
  (* rate 1.0: every vertex is a landmark, every route walks the
     destination's own BFS tree — exact shortest paths *)
  let ball = Tz_scheme.build ~rate:1.0 g in
  check_true "rate=1 delivers" (Routing_function.delivers_all ball.Scheme.rf);
  check_true "rate=1 stretch 1"
    (Routing_function.stretch_at_most ball.Scheme.rf ~num:1 ~den:1);
  (* a vanishing rate falls back to the single landmark {0}; the bound
     still holds (the l=1 Cowen argument) *)
  let b1 = Tz_scheme.build ~rate:1e-9 g in
  check_true "rate~0 delivers" (Routing_function.delivers_all b1.Scheme.rf);
  check_true "rate~0 stretch <= 3"
    (Routing_function.stretch_at_most b1.Scheme.rf ~num:3 ~den:1)

(* Differential stretch check vs BFS ground truth on 50+ seeded graphs
   across three families (stretch_at_most compares every routed pair
   against the BFS distance matrix exactly, in rationals). *)
let stretch3_on name g =
  let b = Tz_scheme.build g in
  check_true
    (Printf.sprintf "%s stretch <= 3" name)
    (Routing_function.stretch_at_most b.Scheme.rf ~num:3 ~den:1)

let test_stretch_differential_random () =
  let st = rng () in
  for i = 1 to 20 do
    let n = 8 + Random.State.int st 40 in
    let m = n - 1 + Random.State.int st n in
    stretch3_on
      (Printf.sprintf "random#%d n=%d" i n)
      (Generators.random_connected st ~n ~m)
  done

let test_stretch_differential_ba () =
  let st = rng () in
  for i = 1 to 20 do
    let n = 10 + Random.State.int st 50 in
    let m = 1 + Random.State.int st 3 in
    stretch3_on
      (Printf.sprintf "ba#%d n=%d m=%d" i n m)
      (Generators.barabasi_albert st ~n ~m)
  done

let test_stretch_differential_grid () =
  for w = 2 to 6 do
    for h = 2 to 4 do
      stretch3_on (Printf.sprintf "grid %dx%d" w h) (Generators.grid w h)
    done
  done

(* ---------- bunches and clusters ---------- *)

let test_bunch_cluster_symmetry () =
  let st = rng () in
  let graphs =
    [
      ("grid", Generators.grid 5 5);
      ("random", Generators.random_connected st ~n:40 ~m:90);
      ("ba", Generators.barabasi_albert st ~n:48 ~m:2);
    ]
  in
  List.iter
    (fun (name, g) ->
      let d = Tz_scheme.prepare g in
      let n = Graph.order g in
      let in_arr a x = Array.exists (fun y -> y = x) a in
      for v = 0 to n - 1 do
        (* w ∈ B(v) ⇔ v ∈ C(w): v's bunch is exactly the set of
           vertices whose cluster table stores v *)
        let b = Tz_scheme.bunch d v in
        Array.iter
          (fun w ->
            check_true
              (Printf.sprintf "%s: v=%d in cluster(%d)" name v w)
              (in_arr (Tz_scheme.cluster_members d w) v))
          b;
        Array.iter
          (fun w ->
            if in_arr (Tz_scheme.cluster_members d v) w then
              check_true
                (Printf.sprintf "%s: %d in bunch(%d)" name v w)
                (in_arr (Tz_scheme.bunch d w) v))
          (Tz_scheme.cluster_members d v)
      done)
    graphs

let test_bunch_excludes_landmarks () =
  let st = rng () in
  let g = Generators.random_connected st ~n:30 ~m:60 in
  let d = Tz_scheme.prepare g in
  let lm = Tz_scheme.landmarks d in
  for v = 0 to Graph.order g - 1 do
    check_true "d(v,A) = 0 iff landmark"
      (Tz_scheme.dist_to_landmarks d v = 0
      = Array.exists (fun l -> l = v) lm);
    Array.iter
      (fun w ->
        check_true "bunch members are non-landmarks"
          (not (Array.exists (fun l -> l = w) lm)))
      (Tz_scheme.bunch d v)
  done

let test_home_is_nearest () =
  let st = rng () in
  let g = Generators.random_connected st ~n:36 ~m:70 in
  let d = Tz_scheme.prepare g in
  let lm = Tz_scheme.landmarks d in
  let dist = Bfs.all_pairs g in
  for v = 0 to Graph.order g - 1 do
    let hv = lm.(Tz_scheme.home d v) in
    check_int "home attains d(v,A)" (Tz_scheme.dist_to_landmarks d v)
      dist.(v).(hv);
    Array.iter
      (fun l -> check_true "nearest" (dist.(v).(l) >= dist.(v).(hv)))
      lm
  done

(* ---------- bitcode round-trip ---------- *)

(* Rebuild a routing function from nothing but the decoded per-vertex
   bits (plus headers from the labels) and check it routes exactly like
   the original: the encoding really captures the whole local state. *)
let test_bitcode_roundtrip () =
  let st = rng () in
  let graphs =
    [
      ("grid", Generators.grid 4 5);
      ("ba", Generators.barabasi_albert st ~n:32 ~m:2);
      ("random", Generators.random_connected st ~n:24 ~m:50);
    ]
  in
  List.iter
    (fun (name, g) ->
      let n = Graph.order g in
      let b = Tz_scheme.build g in
      let dec =
        Array.init n (fun v ->
            Tz_scheme.decode_vertex (b.Scheme.local_encoding v)
              ~degree:(Graph.degree g v))
      in
      Array.iteri
        (fun v dv ->
          check_int (name ^ " self") v dv.Tz_scheme.dec_self;
          check_int (name ^ " order") n dv.Tz_scheme.dec_order)
        dec;
      let port x h =
        match h with
        | Routing_function.Packed [| v; li; dfs |] ->
          if x = v then None
          else begin
            let dv = dec.(x) in
            let rec bin lo hi =
              if lo > hi then None
              else begin
                let mid = (lo + hi) / 2 in
                let w, p = dv.Tz_scheme.dec_cluster.(mid) in
                if w = v then Some p
                else if w < v then bin (mid + 1) hi
                else bin lo (mid - 1)
              end
            in
            match bin 0 (Array.length dv.Tz_scheme.dec_cluster - 1) with
            | Some p -> Some p
            | None ->
              let row = dv.Tz_scheme.dec_children.(li) in
              let rec scan i =
                if i >= Array.length row then
                  Some dv.Tz_scheme.dec_up_ports.(li)
                else begin
                  let p, lo, hi = row.(i) in
                  if lo <= dfs && dfs <= hi then Some p else scan (i + 1)
                end
              in
              scan 0
          end
        | _ -> invalid_arg "decoded tz: bad header"
      in
      let rf' =
        {
          Routing_function.graph = g;
          init = b.Scheme.rf.Routing_function.init;
          port;
          next_header = (fun _ h -> h);
        }
      in
      check_true (name ^ " decoded delivers")
        (Routing_function.delivers_all rf');
      for u = 0 to n - 1 do
        for v = 0 to n - 1 do
          if u <> v then
            check_int
              (Printf.sprintf "%s decoded route %d->%d" name u v)
              (Routing_function.route_length b.Scheme.rf u v)
              (Routing_function.route_length rf' u v)
        done
      done)
    graphs

let test_build_deterministic () =
  let st = rng () in
  let g = Generators.barabasi_albert st ~n:40 ~m:2 in
  let b1 = Tz_scheme.build g and b2 = Tz_scheme.build g in
  for v = 0 to 39 do
    check_true "same bits"
      (Umrs_bitcode.Bitbuf.to_bool_array (b1.Scheme.local_encoding v)
      = Umrs_bitcode.Bitbuf.to_bool_array (b2.Scheme.local_encoding v))
  done;
  (* a different seed draws a different landmark set (overwhelmingly) *)
  let d1 = Tz_scheme.prepare g and d3 = Tz_scheme.prepare ~seed:999 g in
  check_true "seed matters"
    (Tz_scheme.landmarks d1 <> Tz_scheme.landmarks d3
    || Array.length (Tz_scheme.landmarks d1) = 40)

(* ---------- memory vs the Cowen-style landmark scheme ---------- *)

let test_memory_below_landmark_on_ba () =
  let st = rng () in
  let g = Generators.barabasi_albert st ~n:256 ~m:2 in
  let tz = Tz_scheme.build g in
  let lm = Landmark_scheme.build g in
  check_true "global memory below landmark-3"
    (Scheme.mem_global tz < Scheme.mem_global lm);
  check_true "local memory below landmark-3"
    (Scheme.mem_local tz < Scheme.mem_local lm)

(* ---------- stretch distributions ---------- *)

let test_stretch_report_quantiles () =
  let st = rng () in
  let g = Generators.barabasi_albert st ~n:60 ~m:2 in
  let b = Tz_scheme.build g in
  let r = Routing_function.stretch b.Scheme.rf in
  check_true "p50 >= 1" (r.Routing_function.p50_ratio >= 1.0);
  check_true "p50 <= p95"
    (r.Routing_function.p50_ratio <= r.Routing_function.p95_ratio);
  check_true "p95 <= max"
    (r.Routing_function.p95_ratio <= r.Routing_function.max_ratio)

let test_stretch_dist_exact_vs_sampled () =
  let st = rng () in
  let g = Generators.barabasi_albert st ~n:80 ~m:2 in
  let b = Tz_scheme.build g in
  let ex = Stretch_dist.exact b.Scheme.rf in
  check_true "exact flag" ex.Stretch_dist.ds_exact;
  check_int "all ordered pairs" (80 * 79) ex.Stretch_dist.ds_pairs;
  check_true "max <= 3" (ex.Stretch_dist.ds_max <= 3.0);
  let sa = Stretch_dist.sampled ~seed:5 ~pairs:500 b.Scheme.rf in
  check_true "sampled flag" (not sa.Stretch_dist.ds_exact);
  check_int "pair count" 500 sa.Stretch_dist.ds_pairs;
  check_true "sampled max bounded by exact max"
    (sa.Stretch_dist.ds_max <= ex.Stretch_dist.ds_max +. 1e-9);
  (* domain count must not change the sampled result *)
  let s1 = Stretch_dist.sampled ~seed:5 ~pairs:500 ~domains:1 b.Scheme.rf in
  let s4 = Stretch_dist.sampled ~seed:5 ~pairs:500 ~domains:4 b.Scheme.rf in
  check_true "domain-independent" (s1 = s4);
  (* measure switches on the cutoff *)
  check_true "measure exact under cutoff"
    (Stretch_dist.measure ~cutoff:100 b.Scheme.rf).Stretch_dist.ds_exact;
  check_true "measure sampled over cutoff"
    (not
       (Stretch_dist.measure ~cutoff:10 ~pairs:200 b.Scheme.rf)
         .Stretch_dist.ds_exact)

let suite =
  [
    case "delivers on petersen" test_delivers_petersen;
    case "extreme sampling rates" test_extreme_rates;
    case "stretch <= 3 vs BFS: 20 random graphs" test_stretch_differential_random;
    case "stretch <= 3 vs BFS: 20 BA graphs" test_stretch_differential_ba;
    case "stretch <= 3 vs BFS: 15 grids" test_stretch_differential_grid;
    case "bunch/cluster transpose symmetry" test_bunch_cluster_symmetry;
    case "bunches exclude landmarks" test_bunch_excludes_landmarks;
    case "home is the nearest landmark" test_home_is_nearest;
    case "bitcode round-trip drives routing" test_bitcode_roundtrip;
    case "build is deterministic" test_build_deterministic;
    case "memory below landmark-3 on BA" test_memory_below_landmark_on_ba;
    case "stretch report quantiles ordered" test_stretch_report_quantiles;
    case "stretch distributions exact vs sampled" test_stretch_dist_exact_vs_sampled;
    prop ~count:30 "delivers within stretch 3 on random graphs"
      arbitrary_connected_graph (fun g ->
        Routing_function.stretch_at_most (Tz_scheme.build g).Scheme.rf ~num:3
          ~den:1);
  ]
