(* The serving layer end to end: wire codec round-trips, the Lru and
   Jobqueue building blocks, and a live server on a Unix-domain socket
   in a temp dir - remote answers checked for equality against the
   local Query/Scheme results, plus the failure contracts: deadline
   expiry is a typed timeout, a full queue answers Overloaded (never a
   hang), and SIGTERM drains accepted work before exit. *)

open Umrs_core
open Umrs_graph
open Umrs_routing
open Helpers
module Q = Umrs_store.Query
module Wire = Umrs_server.Wire
module Lru = Umrs_server.Lru
module Jobqueue = Umrs_server.Jobqueue
module Server = Umrs_server.Server
module C = Umrs_client

let with_tmp_dir f =
  let dir = Filename.temp_file "umrs_server" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let rec rm path =
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm (Filename.concat path e)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path
  in
  Fun.protect ~finally:(fun () -> rm dir) (fun () -> f dir)

let ok_client what = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %s" what (C.error_to_string e)

let ok_server what = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %s" what e

(* ---------- wire codec ---------- *)

let sample_matrix = Matrix.create [| [| 1; 2; 1 |]; [| 1; 1; 2 |] |]
let sample_graph = Generators.petersen ()

let sample_requests =
  [ Wire.Ping 12345; Wire.Stats; Wire.Corpus_info; Wire.Nth 7;
    Wire.Mem sample_matrix; Wire.Rank sample_matrix;
    Wire.Range_prefix [| 1; 2 |]; Wire.Range_prefix [||]; Wire.Cgraph_of 0;
    Wire.Evaluate
      { scheme = "routing-tables"; graph_name = "petersen";
        graph = sample_graph };
    Wire.Sleep_ms 250; Wire.Get_shard_map ]

let test_wire_request_roundtrip () =
  List.iteri
    (fun i req ->
      let id = 1000 + i and deadline_ms = 17 * i in
      let payload = Wire.encode_request ~id ~deadline_ms req in
      let id', dl', req' = Wire.decode_request payload in
      check_int "id" id id';
      check_int "deadline" deadline_ms dl';
      check_true (Printf.sprintf "request %d round-trips" i) (req = req'))
    sample_requests

let sample_stats =
  { Wire.st_connections = 3; st_requests = 100; st_overloaded = 2;
    st_timeouts = 1; st_rejected = 4; st_cache_hits = 9; st_cache_misses = 5;
    st_queue_depth = 7; st_queue_capacity = 64; st_workers = 2;
    st_draining = true; st_live_conns = 11; st_cache_evictions = 6;
    st_loop_wakeups = 123456; st_queue_hwm = 13 }

let sample_shard_map =
  { Wire.sm_version = 4; sm_corpus_version = 1;
    sm_variant = Umrs_core.Canonical.Full; sm_p = 2; sm_q = 3; sm_d = 3;
    sm_count = 10; sm_checksum = 0x1234_5678_9ABC_DEF0L;
    sm_shards =
      [| { Wire.sh_lo = 0; sh_hi = 4; sh_key = [| 1; 1; 1; 1; 1; 1 |];
           sh_primary = Wire.Unix_sock "/tmp/a.sock";
           sh_replicas = [ Wire.Unix_sock "/tmp/a2.sock" ] };
         { Wire.sh_lo = 4; sh_hi = 10; sh_key = [| 1; 2; 1; 1; 1; 2 |];
           sh_primary = Wire.Tcp ("shard-b.local", 7700);
           sh_replicas =
             [ Wire.Tcp ("shard-b2.local", 7700); Wire.Unix_sock "/tmp/b3" ] }
      |] }

let test_wire_outcome_roundtrip () =
  let evaluation =
    Scheme.evaluate Table_scheme.scheme ~graph_name:"petersen" sample_graph
  in
  let outcomes =
    [ Wire.Reply (Wire.R_pong 7); Wire.Reply (Wire.R_stats sample_stats);
      Wire.Reply (Wire.R_matrix sample_matrix); Wire.Reply (Wire.R_found true);
      Wire.Reply (Wire.R_found false); Wire.Reply (Wire.R_rank 42);
      Wire.Reply (Wire.R_range (3, 9));
      Wire.Reply (Wire.R_graph (Cgraph.of_matrix sample_matrix));
      Wire.Reply (Wire.R_evaluation evaluation); Wire.Reply (Wire.R_slept 250);
      Wire.Reply (Wire.R_shard_map sample_shard_map);
      Wire.Rejected "no such record"; Wire.Overloaded; Wire.Timed_out ]
  in
  List.iteri
    (fun i outcome ->
      let payload = Wire.encode_outcome ~id:i outcome in
      let id', outcome' = Wire.decode_outcome payload in
      check_int "id" i id';
      check_true (Printf.sprintf "outcome %d round-trips" i)
        (outcome = outcome'))
    outcomes

let test_wire_hello_and_frames () =
  check_true "hello accepted" (Wire.check_hello (Wire.hello ()) = Ok ());
  let bad = Wire.hello () in
  Bytes.set bad 0 'X';
  check_true "bad magic rejected" (Wire.check_hello bad = Error `Bad_magic);
  let worse = Wire.hello () in
  Bytes.set worse 8 '\xFF';
  check_true "bad version rejected"
    (match Wire.check_hello worse with Error (`Bad_version _) -> true | _ -> false);
  with_tmp_dir @@ fun dir ->
  let path = Filename.concat dir "frames.bin" in
  let payloads = [ Bytes.of_string ""; Bytes.of_string "abc" ] in
  let oc = open_out_bin path in
  List.iter (Wire.write_frame oc) payloads;
  close_out oc;
  let ic = open_in_bin path in
  List.iter
    (fun expect ->
      match Wire.read_frame ic with
      | Some got -> check_true "frame payload" (got = expect)
      | None -> Alcotest.fail "premature EOF")
    payloads;
  check_true "clean EOF is None" (Wire.read_frame ic = None);
  close_in ic;
  (* an oversized length prefix is rejected before any allocation *)
  let oc = open_out_bin path in
  output_bytes oc (Bytes.make 4 '\xFF');
  close_out oc;
  let ic = open_in_bin path in
  check_true "oversized frame is a protocol violation"
    (match Wire.read_frame ~max_bytes:1024 ic with
    | exception Invalid_argument _ -> true
    | _ -> false);
  close_in ic

let test_graph_digest_ports_matter () =
  let a = Generators.cycle 5 in
  let b = Generators.cycle 6 in
  check_true "same graph, same digest"
    (Wire.graph_digest a = Wire.graph_digest (Generators.cycle 5));
  check_true "different graphs, different digests"
    (Wire.graph_digest a <> Wire.graph_digest b);
  check_true "cache key is the full encoding, equal iff graphs equal"
    (Wire.graph_key a = Wire.graph_key (Generators.cycle 5)
    && Wire.graph_key a <> Wire.graph_key b)

let test_wire_huge_graph_order_rejected () =
  (* an Evaluate frame claiming 2^32-1 vertices while carrying almost
     no payload must be refused before the decoder allocates the
     adjacency array - one malformed frame must not OOM the server *)
  let buf = Umrs_bitcode.Bitbuf.create () in
  let u width x = Umrs_bitcode.Bitbuf.add_bits buf x ~width in
  u 32 1;            (* request id *)
  u 32 0;            (* deadline *)
  u 8 8;             (* opcode: evaluate *)
  u 32 0;            (* scheme: empty string *)
  u 32 0;            (* graph name: empty string *)
  u 32 0xFFFFFFFF;   (* claimed graph order *)
  u 16 0;            (* a single zero-degree row *)
  check_true "impossible graph order is a protocol violation"
    (match Wire.decode_request (Umrs_bitcode.Bitbuf.to_bytes buf) with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ---------- lru ---------- *)

let test_lru () =
  check_true "capacity < 1 rejected"
    (match Lru.create ~capacity:0 with
    | exception Invalid_argument _ -> true
    | _ -> false);
  let c = Lru.create ~capacity:3 in
  Lru.add c "a" 1;
  Lru.add c "b" 2;
  Lru.add c "c" 3;
  check_int "full" 3 (Lru.length c);
  (* touching "a" makes "b" the eviction victim *)
  check_true "find promotes" (Lru.find c "a" = Some 1);
  Lru.add c "d" 4;
  check_true "lru evicted" (Lru.find c "b" = None);
  check_true "promoted survives" (Lru.find c "a" = Some 1);
  check_true "mru order" (Lru.to_list c = [ ("a", 1); ("d", 4); ("c", 3) ]);
  (* overwrite refreshes, never evicts *)
  Lru.add c "c" 33;
  check_int "no growth on overwrite" 3 (Lru.length c);
  check_true "overwritten" (Lru.find c "c" = Some 33);
  check_true "mem does not promote" (Lru.mem c "d");
  Lru.clear c;
  check_int "cleared" 0 (Lru.length c);
  check_true "empty list" (Lru.to_list c = [])

let test_lru_single_slot () =
  let c = Lru.create ~capacity:1 in
  Lru.add c 1 "one";
  Lru.add c 2 "two";
  check_true "only newest" (Lru.find c 1 = None && Lru.find c 2 = Some "two")

(* ---------- jobqueue ---------- *)

let test_jobqueue_bounded () =
  let q = Jobqueue.create ~capacity:2 in
  check_true "push 1" (Jobqueue.try_push q 1);
  check_true "push 2" (Jobqueue.try_push q 2);
  check_true "full" (not (Jobqueue.try_push q 3));
  check_int "length" 2 (Jobqueue.length q);
  check_true "pop fifo" (Jobqueue.pop q = Some 1);
  check_true "space again" (Jobqueue.try_push q 4);
  Jobqueue.close q;
  check_true "closed refuses" (not (Jobqueue.try_push q 5));
  (* accepted jobs still drain after close, in order *)
  check_true "drain 2" (Jobqueue.pop q = Some 2);
  check_true "drain 4" (Jobqueue.pop q = Some 4);
  check_true "then None" (Jobqueue.pop q = None);
  Jobqueue.close q;
  check_true "close idempotent" (Jobqueue.pop q = None)

let test_jobqueue_unblocks_consumers () =
  let q = Jobqueue.create ~capacity:4 in
  let popped = Atomic.make (-1) in
  let consumer =
    Thread.create (fun () ->
        match Jobqueue.pop q with
        | Some v -> Atomic.set popped v
        | None -> Atomic.set popped (-2)) ()
  in
  Thread.yield ();
  check_true "push wakes consumer" (Jobqueue.try_push q 7);
  Thread.join consumer;
  check_int "consumer got the job" 7 (Atomic.get popped);
  (* close wakes a blocked pop with None *)
  let consumer2 =
    Thread.create (fun () ->
        match Jobqueue.pop q with
        | Some _ -> ()
        | None -> Atomic.set popped (-3)) ()
  in
  Thread.yield ();
  Jobqueue.close q;
  Thread.join consumer2;
  check_int "close unblocked pop" (-3) (Atomic.get popped)

(* ---------- end-to-end fixtures ---------- *)

let build_corpus dir =
  let corpus = Filename.concat dir "ref.corpus" in
  ignore (Umrs_store.Builder.build ~p:2 ~q:3 ~d:3 ~out:corpus ());
  (match Q.build ~corpus () with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "index build: %s" (Q.error_to_string e));
  corpus

let with_server ?(workers = 2) ?(queue = 32) ?corpus dir f =
  let addr = Wire.Unix_sock (Filename.concat dir "srv.sock") in
  let cfg =
    { (Server.default_config addr) with
      Server.workers; queue_capacity = queue; cache_capacity = 8; corpus }
  in
  let srv = ok_server "start" (Server.start cfg) in
  Fun.protect
    ~finally:(fun () ->
      Server.shutdown srv;
      Server.wait srv)
    (fun () -> f addr srv)

let with_client addr f =
  let c = ok_client "connect" (C.connect ~retries:5 addr) in
  Fun.protect ~finally:(fun () -> C.close c) (fun () -> f c)

(* ---------- end-to-end: every request type, remote = local ---------- *)

let test_e2e_remote_equals_local () =
  with_tmp_dir @@ fun dir ->
  let corpus = build_corpus dir in
  let local = ok_client "local open" (
    match Q.open_ ~corpus () with
    | Ok t -> Ok t
    | Error e -> Error (C.Io (Q.error_to_string e)))
  in
  Fun.protect ~finally:(fun () -> Q.close local) @@ fun () ->
  with_server ~corpus dir @@ fun addr _srv ->
  with_client addr @@ fun c ->
  ok_client "ping" (C.ping c);
  let h = ok_client "info" (C.corpus_info c) in
  check_true "remote header = local header" (h = Q.header local);
  let n = h.Umrs_store.Corpus.count in
  check_true "corpus non-trivial" (n >= 3);
  for i = 0 to n - 1 do
    let m = ok_client "nth" (C.nth c i) in
    check_true "nth equal" (Matrix.equal m (Q.nth local i));
    check_true "mem of stored record" (ok_client "mem" (C.mem c m));
    check_int "rank agrees" (Q.rank local m) (ok_client "rank" (C.rank c m));
    check_true "cgraph equal" (ok_client "cgraph" (C.cgraph c i) = Q.cgraph local i)
  done;
  let probe = Matrix.create_relaxed [| [| 3; 3; 3 |]; [| 3; 3; 3 |] |] in
  check_true "mem of absent matrix"
    (ok_client "mem" (C.mem c probe) = Q.mem local probe);
  List.iter
    (fun prefix ->
      check_true "range_prefix equal"
        (ok_client "range" (C.range_prefix c prefix)
        = Q.range_prefix local prefix))
    [ [||]; [| 1 |]; [| 1; 2 |]; [| 2 |] ];
  (* remote evaluation = local evaluation, field for field *)
  let g = Generators.petersen () in
  let remote =
    ok_client "evaluate"
      (C.evaluate c ~scheme:"routing-tables" ~graph_name:"petersen" g)
  in
  let local_eval = Scheme.evaluate Table_scheme.scheme ~graph_name:"petersen" g in
  check_true "evaluation equal" (remote = local_eval);
  check_int "sleep echoes" 5 (ok_client "sleep" (C.sleep_ms c 5));
  let s = ok_client "stats" (C.stats c) in
  check_true "requests counted" (s.Wire.st_requests > 0);
  check_true "not draining" (not s.Wire.st_draining)

let test_e2e_rejections () =
  with_tmp_dir @@ fun dir ->
  let corpus = build_corpus dir in
  with_server ~corpus dir @@ fun addr _srv ->
  with_client addr @@ fun c ->
  let refused what = function
    | Error (C.Refused _) -> ()
    | Ok _ -> Alcotest.failf "%s: expected Refused, got a reply" what
    | Error e ->
      Alcotest.failf "%s: expected Refused, got %s" what (C.error_to_string e)
  in
  refused "nth out of range" (C.nth c 99999);
  refused "wrong shape" (C.mem c (Matrix.create [| [| 1 |] |]));
  refused "unknown scheme"
    (C.evaluate c ~scheme:"no-such-scheme" ~graph_name:"x"
       (Generators.path 3));
  (* a negative sleep cannot even be encoded; the server-side guard is
     the cap on how long a worker may be held *)
  refused "sleep above the cap" (C.sleep_ms c 3_600_000);
  (* the connection survives every rejection *)
  ok_client "ping after rejections" (C.ping c)

let test_e2e_no_corpus_is_refused () =
  with_tmp_dir @@ fun dir ->
  with_server dir @@ fun addr _srv ->
  with_client addr @@ fun c ->
  (match C.nth c 0 with
  | Error (C.Refused _) -> ()
  | _ -> Alcotest.fail "corpus query without a corpus must be Refused");
  ok_client "ping still fine" (C.ping c)

let test_e2e_pipelining_out_of_order () =
  with_tmp_dir @@ fun dir ->
  let corpus = build_corpus dir in
  with_server ~workers:2 ~corpus dir @@ fun addr _srv ->
  with_client addr @@ fun c ->
  (* the slow request is sent first; with two workers the fast one
     finishes first, so its response arrives ahead of ticket order *)
  let slow = ok_client "send slow" (C.send c (Wire.Sleep_ms 150)) in
  let fast = ok_client "send fast" (C.send c (Wire.Nth 0)) in
  let t0 = Unix.gettimeofday () in
  (match ok_client "recv fast" (C.recv c fast) with
  | Wire.R_matrix _ -> ()
  | _ -> Alcotest.fail "fast response has the wrong shape");
  check_true "fast did not wait for slow" (Unix.gettimeofday () -. t0 < 0.125);
  match ok_client "recv slow" (C.recv c slow) with
  | Wire.R_slept 150 -> ()
  | _ -> Alcotest.fail "slow response has the wrong shape"

(* ---------- failure contracts ---------- *)

let test_deadline_expiry_is_typed_timeout () =
  with_tmp_dir @@ fun dir ->
  let corpus = build_corpus dir in
  with_server ~workers:1 ~corpus dir @@ fun addr _srv ->
  with_client addr @@ fun c ->
  (* one worker, held by the sleep: the deadlined request expires while
     queued and must come back Timed_out, not late *)
  let blocker = ok_client "send blocker" (C.send c (Wire.Sleep_ms 250)) in
  let doomed =
    ok_client "send doomed" (C.send c ~deadline_ms:50 (Wire.Nth 0))
  in
  (match C.recv c doomed with
  | Error C.Timed_out -> ()
  | Ok _ -> Alcotest.fail "expired request got a reply"
  | Error e -> Alcotest.failf "expected Timed_out, got %s" (C.error_to_string e));
  (match ok_client "recv blocker" (C.recv c blocker) with
  | Wire.R_slept 250 -> ()
  | _ -> Alcotest.fail "blocker response has the wrong shape");
  let s = ok_client "stats" (C.stats c) in
  check_true "timeout counted" (s.Wire.st_timeouts >= 1)

let test_queue_overflow_is_overloaded_not_a_hang () =
  with_tmp_dir @@ fun dir ->
  let corpus = build_corpus dir in
  with_server ~workers:1 ~queue:1 ~corpus dir @@ fun addr _srv ->
  with_client addr @@ fun c ->
  (* occupy the single worker, give it time to pop the job... *)
  let blocker = ok_client "send blocker" (C.send c (Wire.Sleep_ms 400)) in
  Unix.sleepf 0.1;
  (* ...then fill the 1-slot queue and overflow it *)
  let queued = ok_client "send queued" (C.send c (Wire.Sleep_ms 1)) in
  let shed1 = ok_client "send shed1" (C.send c (Wire.Nth 0)) in
  let shed2 = ok_client "send shed2" (C.send c (Wire.Nth 1)) in
  let overloaded t =
    match C.recv c t with
    | Error C.Overloaded -> true
    | Ok _ -> false
    | Error e -> Alcotest.failf "unexpected %s" (C.error_to_string e)
  in
  check_true "overflow shed" (overloaded shed1 && overloaded shed2);
  (* control plane still answers while the pool is saturated *)
  let s = ok_client "stats under load" (C.stats c) in
  check_true "overloads counted" (s.Wire.st_overloaded >= 2);
  (* and every accepted request still completes - nothing hangs *)
  (match ok_client "recv blocker" (C.recv c blocker) with
  | Wire.R_slept 400 -> ()
  | _ -> Alcotest.fail "blocker wrong shape");
  match ok_client "recv queued" (C.recv c queued) with
  | Wire.R_slept 1 -> ()
  | _ -> Alcotest.fail "queued wrong shape"

let test_sigterm_drains_in_flight () =
  with_tmp_dir @@ fun dir ->
  let sock = Filename.concat dir "sig.sock" in
  let cfg =
    { (Server.default_config (Wire.Unix_sock sock)) with Server.workers = 1 }
  in
  let srv = ok_server "start" (Server.start cfg) in
  let prev_term = Sys.signal Sys.sigterm Sys.Signal_default in
  let prev_int = Sys.signal Sys.sigint Sys.Signal_default in
  Fun.protect
    ~finally:(fun () ->
      Sys.set_signal Sys.sigterm prev_term;
      Sys.set_signal Sys.sigint prev_int)
    (fun () ->
      Server.install_signal_handlers srv;
      with_client (Wire.Unix_sock sock) @@ fun c ->
      let inflight = ok_client "send" (C.send c (Wire.Sleep_ms 200)) in
      Unix.sleepf 0.05;
      (* the worker holds the job; SIGTERM must drain it, not drop it *)
      Unix.kill (Unix.getpid ()) Sys.sigterm;
      (match ok_client "recv across drain" (C.recv c inflight) with
      | Wire.R_slept 200 -> ()
      | _ -> Alcotest.fail "in-flight response has the wrong shape");
      Server.wait srv;
      check_true "socket removed after drain" (not (Sys.file_exists sock));
      check_true "new connections refused after drain"
        (match C.connect (Wire.Unix_sock sock) with
        | Error (C.Io _) -> true
        | Ok c2 ->
          C.close c2;
          false
        | Error _ -> true))

let test_requests_during_drain_are_overloaded () =
  with_tmp_dir @@ fun dir ->
  let corpus = build_corpus dir in
  with_server ~workers:1 ~corpus dir @@ fun addr srv ->
  with_client addr @@ fun c ->
  let blocker = ok_client "send blocker" (C.send c (Wire.Sleep_ms 150)) in
  Unix.sleepf 0.05;
  Server.shutdown srv;
  (* admission is closed: a new data-plane request is shed, while the
     accepted one still completes *)
  (match C.call c (Wire.Nth 0) with
  | Error C.Overloaded -> ()
  | Ok _ -> Alcotest.fail "request after shutdown got a reply"
  | Error e -> Alcotest.failf "expected Overloaded, got %s" (C.error_to_string e));
  match ok_client "recv blocker" (C.recv c blocker) with
  | Wire.R_slept 150 -> ()
  | _ -> Alcotest.fail "blocker wrong shape"

let test_evaluation_cache_hits () =
  with_tmp_dir @@ fun dir ->
  with_server dir @@ fun addr _srv ->
  with_client addr @@ fun c ->
  let g = Generators.cycle 6 in
  let e1 =
    ok_client "evaluate 1"
      (C.evaluate c ~scheme:"routing-tables" ~graph_name:"c6" g)
  in
  let e2 =
    ok_client "evaluate 2"
      (C.evaluate c ~scheme:"routing-tables" ~graph_name:"c6" g)
  in
  check_true "cached result identical" (e1 = e2);
  let s = ok_client "stats" (C.stats c) in
  check_true "a miss then a hit"
    (s.Wire.st_cache_misses >= 1 && s.Wire.st_cache_hits >= 1);
  (* a different graph name is a different key even for the same graph *)
  let hits_before = s.Wire.st_cache_hits in
  ignore
    (ok_client "evaluate 3"
       (C.evaluate c ~scheme:"routing-tables" ~graph_name:"other" g));
  let s' = ok_client "stats" (C.stats c) in
  check_int "renamed graph misses" hits_before s'.Wire.st_cache_hits

let test_unix_socket_path_safety () =
  with_tmp_dir @@ fun dir ->
  (* a regular file at the socket path is refused, never deleted *)
  let precious = Filename.concat dir "precious.txt" in
  let oc = open_out precious in
  output_string oc "do not delete";
  close_out oc;
  (match Server.start (Server.default_config (Wire.Unix_sock precious)) with
  | Error _ -> ()
  | Ok srv ->
    Server.shutdown srv;
    Server.wait srv;
    Alcotest.fail "bound over a regular file");
  check_true "regular file survived" (Sys.file_exists precious);
  (* a live server's socket is address-in-use, not a silent takeover *)
  let sock = Filename.concat dir "live.sock" in
  let srv =
    ok_server "start" (Server.start (Server.default_config (Wire.Unix_sock sock)))
  in
  Fun.protect
    ~finally:(fun () ->
      Server.shutdown srv;
      Server.wait srv)
    (fun () ->
      (match Server.start (Server.default_config (Wire.Unix_sock sock)) with
      | Error _ -> ()
      | Ok srv2 ->
        Server.shutdown srv2;
        Server.wait srv2;
        Alcotest.fail "second server stole a live socket");
      (* the first server kept serving throughout *)
      with_client (Wire.Unix_sock sock) @@ fun c ->
      ok_client "ping survivor" (C.ping c));
  (* a stale socket left by a dead server is cleaned up and reused *)
  let stale = Filename.concat dir "stale.sock" in
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX stale);
  Unix.close fd;
  check_true "stale path exists" (Sys.file_exists stale);
  let srv3 =
    ok_server "start over stale socket"
      (Server.start (Server.default_config (Wire.Unix_sock stale)))
  in
  Server.shutdown srv3;
  Server.wait srv3

let test_connection_cap_sheds_excess () =
  with_tmp_dir @@ fun dir ->
  let addr = Wire.Unix_sock (Filename.concat dir "cap.sock") in
  let cfg = { (Server.default_config addr) with Server.max_conns = 1 } in
  let srv = ok_server "start" (Server.start cfg) in
  Fun.protect
    ~finally:(fun () ->
      Server.shutdown srv;
      Server.wait srv)
    (fun () ->
      (with_client addr @@ fun c ->
       ok_client "first connection serves" (C.ping c);
       (* at the cap, the next connection is closed at accept - the
          client sees an immediate I/O failure, not a hang *)
       match C.connect addr with
       | Error (C.Io _) -> ()
       | Ok c2 ->
         C.close c2;
         Alcotest.fail "connection above the cap was accepted"
       | Error e ->
         Alcotest.failf "expected Io, got %s" (C.error_to_string e));
      (* closing the first connection frees its slot *)
      with_client addr @@ fun c -> ok_client "slot released" (C.ping c))

let test_bad_config_is_error () =
  with_tmp_dir @@ fun dir ->
  let addr = Wire.Unix_sock (Filename.concat dir "x.sock") in
  let bad cfg =
    match Server.start cfg with
    | Error _ -> true
    | Ok srv ->
      Server.shutdown srv;
      Server.wait srv;
      false
  in
  check_true "workers < 1"
    (bad { (Server.default_config addr) with Server.workers = 0 });
  check_true "queue < 1"
    (bad { (Server.default_config addr) with Server.queue_capacity = 0 });
  check_true "max_conns < 1"
    (bad { (Server.default_config addr) with Server.max_conns = 0 });
  check_true "missing corpus"
    (bad
       { (Server.default_config addr) with
         Server.corpus = Some (Filename.concat dir "absent.corpus") })

(* ---------- event loop unit coverage ---------- *)

module Evloop = Umrs_server.Evloop

let evloop_backends () =
  if Evloop.epoll_available () then [ Evloop.Epoll; Evloop.Select ]
  else [ Evloop.Select ]

let test_evloop_readiness_and_wakeup () =
  List.iter
    (fun backend ->
      let name =
        match backend with Evloop.Epoll -> "epoll" | Evloop.Select -> "select"
      in
      let loop = Evloop.create ~backend () in
      Fun.protect ~finally:(fun () -> Evloop.close loop) @@ fun () ->
      let r, w = Unix.pipe ~cloexec:true () in
      Fun.protect
        ~finally:(fun () ->
          (try Unix.close r with Unix.Unix_error _ -> ());
          try Unix.close w with Unix.Unix_error _ -> ())
      @@ fun () ->
      Evloop.add loop r ~readable:true ~writable:false;
      check_int (name ^ ": one fd registered") 1 (Evloop.fd_count loop);
      let events = ref [] in
      let handler fd ~readable ~writable ~hup =
        events := (Evloop.int_of_fd fd, readable, writable, hup) :: !events
      in
      (* idle pipe: the wait times out with nothing delivered *)
      check_int (name ^ ": no spurious events") 0
        (Evloop.wait loop ~timeout_ms:10 ~handler);
      (* a byte arrives: the read end reports readable *)
      ignore (Unix.write w (Bytes.of_string "x") 0 1);
      check_true (name ^ ": readable delivered")
        (Evloop.wait loop ~timeout_ms:1000 ~handler > 0);
      (match !events with
      | [ (fd, true, _, _) ] -> check_int (name ^ ": right fd") (Evloop.int_of_fd r) fd
      | _ -> Alcotest.failf "%s: expected one readable event" name);
      (* a wakeup from another thread interrupts a long wait promptly
         and is never surfaced as an event *)
      let t0 = Unix.gettimeofday () in
      let waker =
        Thread.create
          (fun () ->
            Thread.delay 0.05;
            Evloop.wakeup loop)
          ()
      in
      ignore (Unix.read r (Bytes.create 8) 0 8);
      events := [];
      check_int (name ^ ": wakeup is internal") 0
        (Evloop.wait loop ~timeout_ms:5000 ~handler);
      Thread.join waker;
      check_true (name ^ ": wakeup cut the wait short")
        (Unix.gettimeofday () -. t0 < 2.0);
      (* modify to watch the write end for writability *)
      Evloop.remove loop r;
      Evloop.add loop w ~readable:false ~writable:true;
      events := [];
      check_true (name ^ ": writable delivered")
        (Evloop.wait loop ~timeout_ms:1000 ~handler > 0);
      (match !events with
      | (fd, _, true, _) :: _ -> check_int (name ^ ": write end") (Evloop.int_of_fd w) fd
      | _ -> Alcotest.failf "%s: expected a writable event" name);
      Evloop.remove loop w;
      check_int (name ^ ": interest empty") 0 (Evloop.fd_count loop);
      check_int (name ^ ": removed fd is silent") 0
        (Evloop.wait loop ~timeout_ms:10 ~handler))
    (evloop_backends ())

let test_evloop_poll1 () =
  let r, w = Unix.pipe ~cloexec:true () in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close r with Unix.Unix_error _ -> ());
      try Unix.close w with Unix.Unix_error _ -> ())
  @@ fun () ->
  check_true "empty pipe is not readable"
    (not (Evloop.wait_readable r ~timeout_ms:10));
  check_true "open pipe is writable" (Evloop.wait_writable w ~timeout_ms:1000);
  ignore (Unix.write w (Bytes.of_string "y") 0 1);
  check_true "byte makes it readable" (Evloop.wait_readable r ~timeout_ms:1000)

(* ---------- threads backend: same contract end to end ---------- *)

let test_threads_backend_e2e () =
  with_tmp_dir @@ fun dir ->
  let corpus = build_corpus dir in
  let addr = Wire.Unix_sock (Filename.concat dir "thr.sock") in
  let cfg =
    { (Server.default_config addr) with
      Server.backend = Server.Threads; corpus = Some corpus; workers = 2;
      queue_capacity = 32 }
  in
  let srv = ok_server "start threads" (Server.start cfg) in
  Fun.protect
    ~finally:(fun () ->
      Server.shutdown srv;
      Server.wait srv)
    (fun () ->
      with_client addr @@ fun c ->
      ok_client "ping" (C.ping c);
      ignore (ok_client "nth" (C.nth c 0));
      let rs =
        C.call_pipelined c [ Wire.Ping 1; Wire.Nth 0; Wire.Range_prefix [||] ]
      in
      check_int "batch answered in full" 3 (List.length rs);
      List.iter (fun r -> ignore (ok_client "pipelined" r)) rs;
      let s = ok_client "stats" (C.stats c) in
      check_true "live connection counted" (s.Wire.st_live_conns >= 1))

(* ---------- slowloris and handshake reaping (epoll backend) ---------- *)

let sock_path_of = function
  | Wire.Unix_sock p -> p
  | addr -> Alcotest.failf "expected a unix socket, got %s" (Wire.addr_to_string addr)

let read_exactly fd buf off len =
  let rec go off len =
    if len > 0 then
      match Unix.read fd buf off len with
      | 0 -> Alcotest.fail "peer closed mid-read"
      | n -> go (off + n) (len - n)
  in
  go off len

(* Raw protocol client: connect, swap hellos, hand back the naked fd. *)
let raw_connect path =
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX path)
   with e -> (try Unix.close fd with Unix.Unix_error _ -> ()); raise e);
  let hello = Wire.hello () in
  let n = Unix.write fd hello 0 (Bytes.length hello) in
  check_int "hello sent whole" (Bytes.length hello) n;
  let reply = Bytes.create Wire.hello_bytes in
  read_exactly fd reply 0 Wire.hello_bytes;
  (match Wire.check_hello reply with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "bad hello from server");
  fd

let frame_of payload =
  let n = Bytes.length payload in
  let b = Bytes.create (4 + n) in
  Bytes.set_int32_le b 0 (Int32.of_int n);
  Bytes.blit payload 0 b 4 n;
  b

let read_reply fd =
  let hdr = Bytes.create 4 in
  read_exactly fd hdr 0 4;
  let len = Int32.to_int (Bytes.get_int32_le hdr 0) in
  let payload = Bytes.create len in
  read_exactly fd payload 0 len;
  Wire.decode_outcome payload

let test_slowloris_partial_frame () =
  with_tmp_dir @@ fun dir ->
  with_server dir @@ fun addr _srv ->
  let fd = raw_connect (sock_path_of addr) in
  Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  let frame = frame_of (Wire.encode_request ~id:7 ~deadline_ms:0 (Wire.Ping 99)) in
  (* drip the frame one byte at a time across several poller sweeps; a
     connection past its handshake is entitled to be slow *)
  for i = 0 to Bytes.length frame - 1 do
    check_int "dripped byte" 1 (Unix.write fd frame i 1);
    if i land 3 = 0 then Unix.sleepf 0.03
  done;
  (* the dribbler never blocked anyone else *)
  with_client addr (fun c -> ok_client "concurrent client" (C.ping c));
  match read_reply fd with
  | 7, Wire.Reply (Wire.R_pong 99) -> ()
  | _ -> Alcotest.fail "dripped ping got the wrong reply"

let test_handshake_timeout_reaps_silent_conns () =
  with_tmp_dir @@ fun dir ->
  let addr = Wire.Unix_sock (Filename.concat dir "hs.sock") in
  let cfg =
    { (Server.default_config addr) with Server.handshake_timeout = 0.3 }
  in
  let srv = ok_server "start" (Server.start cfg) in
  Fun.protect
    ~finally:(fun () ->
      Server.shutdown srv;
      Server.wait srv)
    (fun () ->
      let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          Unix.connect fd (Unix.ADDR_UNIX (sock_path_of addr));
          (* send nothing: the server must close us, not hold the fd
             forever *)
          let t0 = Unix.gettimeofday () in
          Unix.setsockopt_float fd Unix.SO_RCVTIMEO 5.0;
          (match Unix.read fd (Bytes.create 1) 0 1 with
          | 0 -> ()
          | _ -> Alcotest.fail "server spoke to a silent connection"
          | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
            ->
            Alcotest.fail "silent connection was never reaped");
          check_true "reaped near the deadline, not eventually"
            (Unix.gettimeofday () -. t0 < 3.0)))

(* ---------- write backpressure (epoll backend) ---------- *)

let test_write_backpressure_tiny_hwm () =
  with_tmp_dir @@ fun dir ->
  let corpus = build_corpus dir in
  let addr = Wire.Unix_sock (Filename.concat dir "bp.sock") in
  (* a 512-byte high-water mark forces pause/resume cycling while a
     pipelined burst's replies drain *)
  let cfg =
    { (Server.default_config addr) with
      Server.corpus = Some corpus; workers = 2; queue_capacity = 512;
      wbuf_hwm = 512 }
  in
  let srv = ok_server "start" (Server.start cfg) in
  Fun.protect
    ~finally:(fun () ->
      Server.shutdown srv;
      Server.wait srv)
    (fun () ->
      with_client addr @@ fun c ->
      let total = 300 in
      let reqs = List.init total (fun i -> Wire.Nth (i mod 3)) in
      let rs = C.call_pipelined c reqs in
      check_int "every reply arrived" total (List.length rs);
      List.iter
        (fun r ->
          match ok_client "burst reply" r with
          | Wire.R_matrix _ -> ()
          | _ -> Alcotest.fail "burst reply has the wrong shape")
        rs)

(* ---------- beyond FD_SETSIZE ---------- *)

let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

let test_thousand_plus_connections () =
  ignore (Evloop.raise_nofile 8192);
  with_tmp_dir @@ fun dir ->
  let addr = Wire.Unix_sock (Filename.concat dir "big.sock") in
  let cfg = { (Server.default_config addr) with Server.max_conns = 4096 } in
  let srv = ok_server "start" (Server.start cfg) in
  Fun.protect
    ~finally:(fun () ->
      Server.shutdown srv;
      Server.wait srv)
    (fun () ->
      let path = sock_path_of addr in
      let want = 1100 in
      let fds = Array.init want (fun _ -> raw_connect path) in
      Fun.protect ~finally:(fun () -> Array.iter close_quietly fds)
      @@ fun () ->
      (* the whole point: descriptors past select's universe still work *)
      check_true "descriptor numbers exceeded FD_SETSIZE"
        (Evloop.int_of_fd fds.(want - 1) > 1024);
      List.iter
        (fun i ->
          let frame =
            frame_of (Wire.encode_request ~id:i ~deadline_ms:0 (Wire.Ping i))
          in
          ignore (Unix.write fds.(i) frame 0 (Bytes.length frame));
          match read_reply fds.(i) with
          | id, Wire.Reply (Wire.R_pong n) when id = i && n = i -> ()
          | _ -> Alcotest.failf "conn %d: bad ping reply" i)
        [ 0; 1023; 1024; want - 1 ];
      with_client addr @@ fun c ->
      let s = ok_client "stats" (C.stats c) in
      check_true "live connections visible in stats"
        (s.Wire.st_live_conns > want - 10))

let test_connection_cap_at_scale () =
  ignore (Evloop.raise_nofile 8192);
  with_tmp_dir @@ fun dir ->
  let addr = Wire.Unix_sock (Filename.concat dir "cap2.sock") in
  let cap = 64 in
  let cfg = { (Server.default_config addr) with Server.max_conns = cap } in
  let srv = ok_server "start" (Server.start cfg) in
  Fun.protect
    ~finally:(fun () ->
      Server.shutdown srv;
      Server.wait srv)
    (fun () ->
      let path = sock_path_of addr in
      let fds = Array.init cap (fun _ -> raw_connect path) in
      Fun.protect ~finally:(fun () -> Array.iter close_quietly fds)
      @@ fun () ->
      (* the connection over the cap is shed at accept: the kernel
         completes the unix-socket connect, then the server closes it
         without ever sending a hello *)
      let extra = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Fun.protect ~finally:(fun () -> close_quietly extra)
      @@ fun () ->
      Unix.connect extra (Unix.ADDR_UNIX path);
      Unix.setsockopt_float extra Unix.SO_RCVTIMEO 5.0;
      (match Unix.read extra (Bytes.create 1) 0 1 with
      | 0 -> ()
      | _ -> Alcotest.fail "server greeted a connection above the cap"
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        Alcotest.fail "connection above the cap was left hanging");
      (* freeing slots reopens the door *)
      Array.iteri (fun i fd -> if i < cap / 2 then close_quietly fd) fds;
      let rec retry n =
        if n = 0 then Alcotest.fail "freed slots were never reusable"
        else
          match raw_connect path with
          | fd -> close_quietly fd
          | exception _ ->
            Unix.sleepf 0.05;
            retry (n - 1)
      in
      retry 40)

(* ---------- select fallback, forced end to end via the env knob ---------- *)

let test_select_backend_e2e () =
  let prior = Sys.getenv_opt "UMRS_EVLOOP_BACKEND" in
  Unix.putenv "UMRS_EVLOOP_BACKEND" "select";
  Fun.protect
    ~finally:(fun () ->
      (* putenv cannot unset; an empty value falls back to the auto-pick *)
      Unix.putenv "UMRS_EVLOOP_BACKEND" (Option.value prior ~default:""))
    (fun () ->
      let loop = Evloop.create () in
      Fun.protect ~finally:(fun () -> Evloop.close loop) @@ fun () ->
      check_true "env knob steers the auto-pick"
        (Evloop.backend loop = Evloop.Select);
      (if Evloop.epoll_available () then begin
         (* ...but an explicit request always wins *)
         let l2 = Evloop.create ~backend:Evloop.Epoll () in
         Fun.protect ~finally:(fun () -> Evloop.close l2) @@ fun () ->
         check_true "explicit backend beats the env"
           (Evloop.backend l2 = Evloop.Epoll)
       end);
      (* a whole server runs its poller on select and serves the same
         contract: typed calls, a pipelined burst, raw-fd traffic *)
      with_tmp_dir @@ fun dir ->
      let corpus = build_corpus dir in
      with_server ~queue:128 ~corpus dir @@ fun addr _srv ->
      (with_client addr @@ fun c ->
       ok_client "ping over select" (C.ping c);
       let m = ok_client "nth over select" (C.nth c 0) in
       check_true "mem over select" (ok_client "mem" (C.mem c m));
       let rs =
         C.call_pipelined c (List.init 50 (fun i -> Wire.Nth (i mod 3)))
       in
       check_int "pipelined burst answered" 50 (List.length rs);
       List.iter (fun r -> ignore (ok_client "burst reply" r)) rs);
      let fd = raw_connect (sock_path_of addr) in
      Fun.protect ~finally:(fun () -> close_quietly fd) @@ fun () ->
      let frame =
        frame_of (Wire.encode_request ~id:9 ~deadline_ms:0 (Wire.Ping 9))
      in
      ignore (Unix.write fd frame 0 (Bytes.length frame));
      match read_reply fd with
      | 9, Wire.Reply (Wire.R_pong 9) -> ()
      | _ -> Alcotest.fail "select backend: bad raw ping reply")

(* ---------- protocol version mismatch, both directions ---------- *)

let test_version_mismatch_is_typed_and_clean () =
  with_tmp_dir @@ fun dir ->
  (* client side: a server greeting with the wrong version is a typed
     Protocol error naming both versions - never a hang or a crash *)
  let path = Filename.concat dir "old.sock" in
  let lfd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect ~finally:(fun () -> close_quietly lfd) @@ fun () ->
  Unix.bind lfd (Unix.ADDR_UNIX path);
  Unix.listen lfd 1;
  let impostor =
    Thread.create
      (fun () ->
        let fd, _ = Unix.accept ~cloexec:true lfd in
        let greeting = Wire.hello () in
        Bytes.set_uint16_le greeting 8 (Wire.protocol_version + 1);
        ignore (Unix.write fd greeting 0 (Bytes.length greeting));
        (* drain the client's hello so its write never blocks *)
        (try read_exactly fd (Bytes.create Wire.hello_bytes) 0 Wire.hello_bytes
         with _ -> ());
        close_quietly fd)
      ()
  in
  (match C.connect (Wire.Unix_sock path) with
  | Error (C.Protocol msg) ->
    check_true "mismatch names the offered version"
      (let needle = string_of_int (Wire.protocol_version + 1) in
       let nl = String.length needle and ml = String.length msg in
       let rec scan i =
         i + nl <= ml && (String.sub msg i nl = needle || scan (i + 1))
       in
       scan 0)
  | Ok c ->
    C.close c;
    Alcotest.fail "client accepted a wrong-version hello"
  | Error e -> Alcotest.failf "expected Protocol, got %s" (C.error_to_string e));
  Thread.join impostor;
  (* server side: a client hello with the wrong version is answered by a
     clean close, promptly, with the server still serving others *)
  with_server dir @@ fun addr _srv ->
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect ~finally:(fun () -> close_quietly fd) @@ fun () ->
  Unix.connect fd (Unix.ADDR_UNIX (sock_path_of addr));
  let bad = Wire.hello () in
  Bytes.set_uint16_le bad 8 (Wire.protocol_version + 1);
  ignore (Unix.write fd bad 0 (Bytes.length bad));
  Unix.setsockopt_float fd Unix.SO_RCVTIMEO 5.0;
  let buf = Bytes.create (2 * Wire.hello_bytes) in
  let rec drain_to_eof budget =
    if budget = 0 then Alcotest.fail "server never closed a wrong-version peer"
    else
      match Unix.read fd buf 0 (Bytes.length buf) with
      | 0 -> ()
      | _ -> drain_to_eof (budget - 1) (* a server hello in flight is fine *)
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        Alcotest.fail "wrong-version connection was left hanging"
      | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> ()
  in
  drain_to_eof 4;
  with_client addr @@ fun c ->
  ok_client "server survives a version mismatch" (C.ping c)

let suite =
  [
    case "wire: requests round-trip" test_wire_request_roundtrip;
    case "wire: outcomes round-trip" test_wire_outcome_roundtrip;
    case "wire: hello and framing" test_wire_hello_and_frames;
    case "wire: graph digest" test_graph_digest_ports_matter;
    case "wire: impossible graph order rejected"
      test_wire_huge_graph_order_rejected;
    case "lru: eviction and promotion" test_lru;
    case "lru: single slot" test_lru_single_slot;
    case "jobqueue: bounded fifo" test_jobqueue_bounded;
    case "jobqueue: wakeups" test_jobqueue_unblocks_consumers;
    case "e2e: remote = local on every request type" test_e2e_remote_equals_local;
    case "e2e: rejections are typed and survivable" test_e2e_rejections;
    case "e2e: no corpus attached" test_e2e_no_corpus_is_refused;
    case "e2e: pipelined responses out of order" test_e2e_pipelining_out_of_order;
    case "deadline expiry is a typed timeout" test_deadline_expiry_is_typed_timeout;
    case "queue overflow is Overloaded, not a hang"
      test_queue_overflow_is_overloaded_not_a_hang;
    case "SIGTERM drains in-flight requests" test_sigterm_drains_in_flight;
    case "requests during drain are shed" test_requests_during_drain_are_overloaded;
    case "evaluation cache hits" test_evaluation_cache_hits;
    case "unix socket path is never stolen" test_unix_socket_path_safety;
    case "connection cap sheds excess connections"
      test_connection_cap_sheds_excess;
    case "bad configs are errors" test_bad_config_is_error;
    case "evloop: readiness, interest, wakeup" test_evloop_readiness_and_wakeup;
    case "evloop: single-fd poll" test_evloop_poll1;
    case "threads backend serves the same contract" test_threads_backend_e2e;
    case "slowloris: a dripped frame is buffered, not a thread"
      test_slowloris_partial_frame;
    case "handshake timeout reaps silent connections"
      test_handshake_timeout_reaps_silent_conns;
    case "write backpressure survives a tiny high-water mark"
      test_write_backpressure_tiny_hwm;
    case "a thousand-plus live connections (past FD_SETSIZE)"
      test_thousand_plus_connections;
    case "connection cap holds at scale" test_connection_cap_at_scale;
    case "select fallback serves the same contract end to end"
      test_select_backend_e2e;
    case "protocol version mismatch is typed and clean"
      test_version_mismatch_is_typed_and_clean;
  ]
