(* Seeded property-testing kernel for the suite.

   Every random test in the repo draws from one explicit PRNG so a
   failure is reproducible from its printed seed: a run derives case
   [k] from [Random.State.make [| seed; k |]], and a falsified property
   reports [seed], [k], the counterexample, and its shrunk form. Re-run
   the same binary with [UMRS_TEST_SEED=<seed>] (or pass [~seed]) to
   replay the exact sequence - the repro-seed convention documented in
   doc/TUTORIAL.md.

   Generators cover the paper's objects: matrices over {1..d} (raw,
   normalized-row, and canonical representatives of dM(p,q)),
   row/column/alphabet permutations, and random connected graphs and
   trees. Shrinking is structural (drop a row, drop a column, send an
   entry to 1), so reported counterexamples are small. *)

open Umrs_core
open Umrs_graph

type 'a t = {
  gen : Random.State.t -> 'a;
  print : 'a -> string;
  shrink : 'a -> 'a Seq.t;
}

let make ?(print = fun _ -> "<opaque>") ?(shrink = fun _ -> Seq.empty) gen =
  { gen; print; shrink }

let default_seed = 0x5EED42

let base_seed () =
  match Sys.getenv_opt "UMRS_TEST_SEED" with
  | None -> default_seed
  | Some s -> (
    match int_of_string_opt s with
    | Some v -> v
    | None -> invalid_arg "UMRS_TEST_SEED must be an integer")

(* ---------- runner ---------- *)

let shrink_budget = 1000

let run ?(count = 100) ?seed name arb f =
  let seed = match seed with Some s -> s | None -> base_seed () in
  let holds x = match f x with b -> b | exception _ -> false in
  let exn_of x = match f x with _ -> None | exception e -> Some e in
  for k = 0 to count - 1 do
    let st = Random.State.make [| seed; k |] in
    let x = arb.gen st in
    if not (holds x) then begin
      let steps = ref 0 in
      let rec minimize x =
        if !steps >= shrink_budget then x
        else
          match Seq.find (fun y -> incr steps; not (holds y)) (arb.shrink x) with
          | Some y -> minimize y
          | None -> x
      in
      let y = minimize x in
      let raised e = Printf.sprintf " (raised %s)" (Printexc.to_string e) in
      let exn_note x = Option.fold ~none:"" ~some:raised (exn_of x) in
      Alcotest.failf
        "%s: falsified%s\n  counterexample: %s\n  shrunk:         %s%s\n\
        \  reproduce with UMRS_TEST_SEED=%d (case %d of %d)"
        name (exn_note x) (arb.print x) (arb.print y) (exn_note y) seed k count
    end
  done

let prop ?count ?seed name arb f =
  Alcotest.test_case name `Quick (fun () -> run ?count ?seed name arb f)

(* ---------- scalar and permutation generators ---------- *)

let int_range lo hi =
  if hi < lo then invalid_arg "Gen.int_range";
  make
    ~print:string_of_int
    ~shrink:(fun v -> if v > lo then Seq.return lo else Seq.empty)
    (fun st -> lo + Random.State.int st (hi - lo + 1))

let perm ?(max_n = 8) () =
  let print p =
    "[" ^ String.concat " " (Array.to_list (Array.map string_of_int p)) ^ "]"
  in
  make ~print (fun st -> Perm.random st (1 + Random.State.int st max_n))

(* ---------- matrix generators ---------- *)

let print_matrix = Matrix.to_string

let submatrix m ~p ~q =
  Matrix.create_relaxed (Array.init p (fun i -> Array.init q (Matrix.get m i)))

let shrink_matrix m =
  let p, q = Matrix.dims m in
  let structural =
    List.filter_map Fun.id
      [ (if p > 1 then Some (submatrix m ~p:(p - 1) ~q) else None);
        (if q > 1 then Some (submatrix m ~p ~q:(q - 1)) else None) ]
  in
  let entries =
    List.concat_map
      (fun i ->
        List.filter_map
          (fun j ->
            if Matrix.get m i j > 1 then
              Some
                (Matrix.create_relaxed
                   (Array.init p (fun a ->
                        Array.init q (fun b ->
                            if a = i && b = j then 1 else Matrix.get m a b))))
            else None)
          (List.init q Fun.id))
      (List.init p Fun.id)
  in
  List.to_seq (structural @ entries)

let raw_entries st ~p ~q ~d =
  Array.init p (fun _ -> Array.init q (fun _ -> 1 + Random.State.int st d))

(* Arbitrary matrix over {1..d}: no row-normalization constraint. *)
let matrix ?(max_p = 4) ?(max_q = 4) ?(max_d = 4) () =
  make ~print:print_matrix ~shrink:shrink_matrix (fun st ->
      let p = 1 + Random.State.int st max_p
      and q = 1 + Random.State.int st max_q
      and d = 1 + Random.State.int st max_d in
      Matrix.create_relaxed (raw_entries st ~p ~q ~d))

(* Matrix with normalized rows ({!Matrix.create} acceptance) - shrunk
   candidates are re-normalized so they stay in the class. *)
let matrix_normalized ?(max_p = 4) ?(max_q = 4) ?(max_d = 4) () =
  let normalize m =
    let p, q = Matrix.dims m in
    Matrix.create
      (Array.init p (fun i ->
           Canonical.normalize_row (Array.init q (Matrix.get m i))))
  in
  make ~print:print_matrix
    ~shrink:(fun m -> Seq.map normalize (shrink_matrix m))
    (fun st ->
      let p = 1 + Random.State.int st max_p
      and q = 1 + Random.State.int st max_q
      and d = 1 + Random.State.int st max_d in
      Matrix.create
        (Array.map Canonical.normalize_row (raw_entries st ~p ~q ~d)))

(* A member of dM(p,q): the canonical representative of a random
   matrix. Shrunk candidates are canonicalized so they stay members. *)
let canonical_matrix ?(variant = Canonical.Full) ?max_p ?max_q ?max_d () =
  let inner = matrix ?max_p ?max_q ?max_d () in
  make ~print:print_matrix
    ~shrink:(fun m -> Seq.map (Canonical.canonical ~variant) (shrink_matrix m))
    (fun st -> Canonical.canonical ~variant (inner.gen st))

(* ---------- graph generators ---------- *)

let print_graph g = Format.asprintf "%a" Graph.pp g

(* Small random connected graph: n in [2, 24], m up to ~2n. *)
let connected_graph ?(max_n = 24) () =
  make ~print:print_graph (fun st ->
      let n = 2 + Random.State.int st (max_n - 1) in
      let max_m = n * (n - 1) / 2 in
      let m = min max_m (n - 1 + Random.State.int st (n + 1)) in
      Generators.random_connected st ~n ~m)

let tree ?(max_n = 32) () =
  make ~print:print_graph (fun st ->
      Generators.random_tree st (2 + Random.State.int st (max_n - 1)))
