open Umrs_graph
open Umrs_routing
open Helpers

(* ---------- Routing_function ---------- *)

let tables g = Table_scheme.build g

let test_route_on_path () =
  let g = Generators.path 5 in
  let rf = (tables g).Scheme.rf in
  let t = Routing_function.route rf 0 4 in
  check_true "path" (t.Routing_function.path = [ 0; 1; 2; 3; 4 ]);
  check_int "hops" 4 t.Routing_function.hops;
  check_int "headers count" 5 (List.length t.Routing_function.headers)

let test_route_src_eq_dst_rejected () =
  let g = Generators.path 3 in
  let rf = (tables g).Scheme.rf in
  check_true "src=dst raises"
    (try ignore (Routing_function.route rf 1 1); false
     with Invalid_argument _ -> true)

let test_routing_loop_detected () =
  (* adversarial function that bounces between 0 and 1 forever *)
  let g = Generators.path 3 in
  let rf =
    {
      Routing_function.graph = g;
      init = (fun _ v -> Routing_function.Dest v);
      port = (fun u _ -> Some (if u = 0 then 1 else 1));
      next_header = (fun _ h -> h);
    }
  in
  check_true "loop raises"
    (try ignore (Routing_function.route rf 0 2); false
     with Routing_function.Routing_loop (0, 2) -> true)

let test_wrong_delivery_detected () =
  let g = Generators.path 3 in
  let rf =
    {
      Routing_function.graph = g;
      init = (fun _ v -> Routing_function.Dest v);
      port = (fun _ _ -> None);
      next_header = (fun _ h -> h);
    }
  in
  check_true "misdelivery raises"
    (try ignore (Routing_function.route rf 0 2); false
     with Invalid_argument _ -> true)

let test_stretch_report_shortest () =
  let g = Generators.cycle 7 in
  let rf = (tables g).Scheme.rf in
  let r = Routing_function.stretch rf in
  Alcotest.(check (float 1e-9)) "max stretch 1" 1.0 r.Routing_function.max_ratio;
  Alcotest.(check (float 1e-9)) "mean stretch 1" 1.0 r.Routing_function.mean_ratio

let test_stretch_detects_detour () =
  (* On C5, always route clockwise: worst pair has dR=4 vs dG=1 *)
  let g = Generators.cycle 5 in
  let next u _ =
    match Graph.port_to g ~src:u ~dst:((u + 1) mod 5) with
    | Some k -> k
    | None -> assert false
  in
  let rf = Routing_function.of_next_hop g next in
  let r = Routing_function.stretch rf in
  Alcotest.(check (float 1e-9)) "max 4" 4.0 r.Routing_function.max_ratio;
  check_true "stretch_at_most 4" (Routing_function.stretch_at_most rf ~num:4 ~den:1);
  check_true "not at most 3.9"
    (not (Routing_function.stretch_at_most rf ~num:39 ~den:10))

let test_delivers_all () =
  let g = Generators.petersen () in
  check_true "tables deliver" (Routing_function.delivers_all (tables g).Scheme.rf)

(* ---------- Table scheme ---------- *)

let test_table_memory_formula () =
  let g = Generators.complete 8 in
  let b = tables g in
  (* each of 8 routers: 7 entries x ceil(log2 7)=3 bits *)
  check_int "local" 21 (Scheme.mem_local b);
  check_int "global" (8 * 21) (Scheme.mem_global b)

let test_table_decode_roundtrip () =
  let g = Generators.petersen () in
  let m = Table_scheme.next_hop_matrix g in
  let b = Table_scheme.build g in
  for v = 0 to 9 do
    let buf = b.Scheme.local_encoding v in
    let decoded =
      Table_scheme.decode_table buf ~order:10 ~degree:(Graph.degree g v) ~self:v
    in
    for dst = 0 to 9 do
      if dst <> v then check_int "entry" m.(v).(dst) decoded.(dst)
    done
  done

let test_next_hop_goes_closer () =
  let g = Generators.petersen () in
  let dist = Bfs.all_pairs g in
  let m = Table_scheme.next_hop_matrix g in
  for u = 0 to 9 do
    for v = 0 to 9 do
      if u <> v then begin
        let w = Graph.neighbor g u ~port:m.(u).(v) in
        check_int "one closer" (dist.(u).(v) - 1) dist.(w).(v)
      end
    done
  done

(* ---------- qcheck over random graphs ---------- *)


let test_registry () =
  let names = Registry.names () in
  check_int "ten universal schemes" 10 (List.length names);
  check_true "unique names"
    (List.length (List.sort_uniq compare names) = List.length names);
  check_true "find hits" (Registry.find "routing-tables" <> None);
  check_true "find misses" (Registry.find "no-such-scheme" = None)

let test_registry_compare_and_csv () =
  let g = Generators.petersen () in
  let evals =
    Registry.compare_on ~graph_name:"petersen" g (Registry.universal ())
  in
  check_int "one eval per scheme" 10 (List.length evals);
  let csv = Registry.to_csv evals in
  let lines = String.split_on_char '\n' csv |> List.filter (( <> ) "") in
  check_int "header + rows" 11 (List.length lines);
  check_true "header" (List.hd lines = Registry.csv_header);
  (* header/row arity stays in sync: every row must carry exactly one
     field per header column, or a consumer silently misaligns *)
  let arity s = List.length (String.split_on_char ',' s) in
  let header_arity = arity Registry.csv_header in
  List.iteri
    (fun i row ->
      check_int (Printf.sprintf "row %d arity = header arity" i) header_arity
        (arity row))
    (List.tl lines);
  (* all universal schemes respect their declared stretch bounds *)
  List.iter2
    (fun scheme e ->
      match scheme.Scheme.stretch_bound with
      | Some b ->
        check_true
          (scheme.Scheme.name ^ " within declared bound")
          (e.Scheme.stretch.Routing_function.max_ratio <= b +. 1e-9)
      | None -> ())
    (Registry.universal ()) evals

let suite =
  [
    case "route on a path" test_route_on_path;
    case "src = dst rejected" test_route_src_eq_dst_rejected;
    case "routing loop detected" test_routing_loop_detected;
    case "wrong delivery detected" test_wrong_delivery_detected;
    case "tables give stretch 1" test_stretch_report_shortest;
    case "stretch detects detours" test_stretch_detects_detour;
    case "delivers_all on petersen" test_delivers_all;
    case "table memory formula" test_table_memory_formula;
    case "table encode/decode roundtrip" test_table_decode_roundtrip;
    case "next hops decrease distance" test_next_hop_goes_closer;
    case "scheme registry" test_registry;
    case "registry compare + csv" test_registry_compare_and_csv;
    prop ~count:40 "tables: stretch 1 on random graphs"
      arbitrary_connected_graph (fun g ->
        Routing_function.stretch_at_most (tables g).Scheme.rf ~num:1 ~den:1);
    prop ~count:40 "tables: decode roundtrip on random graphs"
      arbitrary_connected_graph (fun g ->
        let n = Graph.order g in
        let m = Table_scheme.next_hop_matrix g in
        let b = Table_scheme.build g in
        let ok = ref true in
        for v = 0 to n - 1 do
          let decoded =
            Table_scheme.decode_table (b.Scheme.local_encoding v) ~order:n
              ~degree:(Graph.degree g v) ~self:v
          in
          for dst = 0 to n - 1 do
            if dst <> v && decoded.(dst) <> m.(v).(dst) then ok := false
          done
        done;
        !ok);
    prop ~count:40 "evaluate reports consistent sizes"
      arbitrary_connected_graph (fun g ->
        let e = Scheme.evaluate Table_scheme.scheme ~graph_name:"rnd" g in
        e.Scheme.order = Graph.order g
        && e.Scheme.edges = Graph.size g
        && e.Scheme.mem_local_bits <= e.Scheme.mem_global_bits);
  ]
