open Umrs_graph
open Helpers

let test_path_cycle_complete () =
  check_int "path edges" 4 (Graph.size (Generators.path 5));
  check_int "cycle edges" 5 (Graph.size (Generators.cycle 5));
  check_int "K6 edges" 15 (Graph.size (Generators.complete 6));
  check_true "K6 regular" (Umrs_graph.Props.is_regular (Generators.complete 6))

let test_complete_sorted_ports () =
  let g = Generators.complete 5 in
  for v = 0 to 4 do
    let nb = Graph.neighbors g v in
    let sorted = Array.copy nb in
    Array.sort compare sorted;
    check_true "ports sorted" (nb = sorted)
  done

let test_bipartite_star_wheel () =
  let g = Generators.complete_bipartite 3 4 in
  check_int "K34 edges" 12 (Graph.size g);
  check_true "K34 bipartite" (Props.is_bipartite g);
  check_int "star edges" 6 (Graph.size (Generators.star 7));
  let w = Generators.wheel 6 in
  check_int "wheel edges" 10 (Graph.size w);
  check_int "hub degree" 5 (Graph.degree w 0)

let test_hypercube () =
  let g = Generators.hypercube 5 in
  check_int "order" 32 (Graph.order g);
  check_true "5-regular" (Props.is_regular g && Graph.degree g 0 = 5);
  (* port k flips bit k-1 *)
  check_int "port flip" (6 lxor 4) (Graph.neighbor g 6 ~port:3);
  check_true "bipartite" (Props.is_bipartite g)

let test_grid_torus () =
  let g = Generators.grid 4 3 in
  check_int "grid edges" ((3 * 3) + (2 * 4)) (Graph.size g);
  check_int "grid diameter" 5 (Bfs.diameter g);
  let t = Generators.torus 4 4 in
  check_true "torus 4-regular" (Props.is_regular t && Graph.degree t 0 = 4);
  check_int "torus diameter" 4 (Bfs.diameter t)

let test_petersen () =
  let g = Generators.petersen () in
  check_int "order" 10 (Graph.order g);
  check_int "size" 15 (Graph.size g);
  check_true "3-regular" (Props.is_regular g && Graph.degree g 0 = 3);
  check_int "diameter" 2 (Bfs.diameter g);
  check_true "girth 5" (Props.girth g = Some 5)

let test_generalized_petersen () =
  let g = Generators.generalized_petersen 7 2 in
  check_int "order" 14 (Graph.order g);
  check_true "3-regular" (Props.is_regular g);
  check_true "connected" (Graph.is_connected g)

let test_random_tree () =
  let st = rng () in
  for n = 1 to 20 do
    let t = Generators.random_tree st n in
    check_int "order" n (Graph.order t);
    check_true "is tree" (n = 1 || Props.is_tree t)
  done

let test_caterpillar () =
  let st = rng () in
  let g = Generators.caterpillar st ~spine:5 ~legs:7 in
  check_true "caterpillar is a tree" (Props.is_tree g);
  check_int "order" 12 (Graph.order g)

let test_k_tree_chordal () =
  let st = rng () in
  let g = Generators.k_tree st ~k:2 12 in
  check_true "connected" (Graph.is_connected g);
  check_int "2-tree edge count" (3 + (2 * 9)) (Graph.size g);
  check_true "chordal" (Props.is_chordal g)

let test_outerplanar () =
  let st = rng () in
  let g = Generators.maximal_outerplanar st 10 in
  (* maximal outerplanar on n vertices has 2n-3 edges *)
  check_int "edges 2n-3" 17 (Graph.size g);
  check_true "connected" (Graph.is_connected g);
  check_true "triangulated polygons are chordal" (Props.is_chordal g)

let test_unit_circular_arc () =
  let st = rng () in
  match Generators.unit_circular_arc st ~n:20 ~arc:0.4 with
  | Some g ->
    check_int "order" 20 (Graph.order g);
    check_true "connected" (Graph.is_connected g)
  | None -> Alcotest.fail "arc 0.4 on 20 vertices should connect"

let test_random_connected () =
  let st = rng () in
  let g = Generators.random_connected st ~n:15 ~m:30 in
  check_int "edges" 30 (Graph.size g);
  check_true "connected" (Graph.is_connected g)

let test_random_regular () =
  let st = rng () in
  let g = Generators.random_regular st ~n:12 ~d:3 in
  check_true "3-regular" (Props.is_regular g && Graph.degree g 0 = 3);
  check_true "connected" (Graph.is_connected g)

let test_de_bruijn () =
  let g = Generators.de_bruijn_like 4 in
  check_int "order" 16 (Graph.order g);
  check_true "connected" (Graph.is_connected g);
  check_true "degree <= 4" (Graph.max_degree g <= 4);
  check_true "diameter <= dim" (Bfs.diameter g <= 4)

let test_scale_free_deterministic () =
  (* same seed => byte-identical serialization, independent of how many
     worker domains the host uses (the generators are sequential) *)
  let gen seed =
    let st = Random.State.make [| seed |] in
    let ba = Generators.barabasi_albert st ~n:120 ~m:2 in
    let pl = Generators.chung_lu st ~n:120 ~exponent:2.5 in
    (Graph_io.to_string ba, Graph_io.to_string pl)
  in
  let a1, a2 = gen 42 and b1, b2 = gen 42 in
  check_true "ba replays byte-identically" (a1 = b1);
  check_true "chung-lu replays byte-identically" (a2 = b2);
  let c1, _ = gen 43 in
  check_true "different seed differs" (a1 <> c1)

let test_barabasi_albert_degrees () =
  let st = Random.State.make [| 0xBA |] in
  let m = 3 in
  let g = Generators.barabasi_albert st ~n:256 ~m in
  check_true "connected" (Graph.is_connected g);
  check_int "edge count" (((m + 1) * m / 2) + (m * (256 - m - 1)))
    (Graph.size g);
  let min_deg = ref max_int in
  for v = 0 to 255 do
    min_deg := min !min_deg (Graph.degree g v)
  done;
  check_int "min degree is the attachment parameter" m !min_deg;
  (* preferential attachment concentrates edges on early hubs *)
  check_true "heavy tail: a hub well above the minimum"
    (Graph.max_degree g >= 4 * m)

let test_chung_lu_connected () =
  let st = Random.State.make [| 0xC7 |] in
  for n = 10 to 15 do
    let g = Generators.chung_lu st ~n:(n * 13) ~exponent:2.5 in
    check_true "connected" (Graph.is_connected g);
    check_int "order" (n * 13) (Graph.order g)
  done

let test_fixture_round_trip () =
  List.iter
    (fun name ->
      let path = Filename.concat "../examples" name in
      let g = Graph_io.load ~path in
      check_true (name ^ " connected") (Graph.is_connected g);
      check_true (name ^ " non-trivial") (Graph.order g >= 32);
      let s = Graph_io.to_string g in
      check_true (name ^ " round-trips exactly")
        (Graph_io.to_string (Graph_io.of_string s) = s))
    [ "as_ba64.graph"; "as_ba48_dense.graph"; "as_powerlaw72.graph" ]

let test_corpus () =
  let st = rng () in
  let corpus = Generators.corpus st ~size:16 in
  check_true "non-empty" (List.length corpus >= 14);
  List.iter
    (fun (name, g) ->
      check_true (name ^ " connected") (Graph.is_connected g);
      check_true (name ^ " non-trivial") (Graph.order g >= 4))
    corpus

let suite =
  [
    case "path/cycle/complete" test_path_cycle_complete;
    case "complete has sorted ports" test_complete_sorted_ports;
    case "bipartite/star/wheel" test_bipartite_star_wheel;
    case "hypercube" test_hypercube;
    case "grid and torus" test_grid_torus;
    case "petersen" test_petersen;
    case "generalized petersen" test_generalized_petersen;
    case "random trees" test_random_tree;
    case "caterpillar" test_caterpillar;
    case "k-tree is chordal" test_k_tree_chordal;
    case "maximal outerplanar" test_outerplanar;
    case "unit circular arc" test_unit_circular_arc;
    case "random connected" test_random_connected;
    case "random regular" test_random_regular;
    case "de bruijn" test_de_bruijn;
    case "scale-free generators are seed-deterministic"
      test_scale_free_deterministic;
    case "barabasi-albert degree profile" test_barabasi_albert_degrees;
    case "chung-lu connectivity" test_chung_lu_connected;
    case "AS fixtures round-trip" test_fixture_round_trip;
    case "corpus" test_corpus;
    prop "random trees have n-1 edges" arbitrary_tree (fun t ->
        Graph.size t = Graph.order t - 1 && Graph.is_connected t);
  ]
