open Umrs_core
open Helpers

let test_normalize_row () =
  check_true "example" (Canonical.normalize_row [| 3; 1; 3; 2 |] = [| 1; 2; 1; 3 |]);
  check_true "already normal" (Canonical.normalize_row [| 1; 2; 3 |] = [| 1; 2; 3 |]);
  check_true "constant" (Canonical.normalize_row [| 7; 7 |] = [| 1; 1 |]);
  check_true "reversed" (Canonical.normalize_row [| 2; 1 |] = [| 1; 2 |])

let test_canonical_explicit () =
  (* the paper's worked pair: [1 2; 1 1] reduces to [1 1; 1 2] *)
  let m = Matrix.create [| [| 1; 2 |]; [| 1; 1 |] |] in
  let c = Canonical.canonical m in
  Alcotest.(check string) "canonical" "[1 1; 1 2]" (Matrix.to_string c)

let test_canonical_uses_column_perm () =
  (* [2 1; 1 1] needs a column swap (after row relabel) to reach the
     minimum *)
  let m = Matrix.create_relaxed [| [| 2; 1 |]; [| 1; 1 |] |] in
  Alcotest.(check string)
    "canonical" "[1 1; 1 2]"
    (Matrix.to_string (Canonical.canonical m))

let test_canonical_full_relabels () =
  (* opposite-direction rows merge under the Full variant only *)
  let m = Matrix.create [| [| 1; 2 |]; [| 2; 1 |] |] in
  Alcotest.(check string)
    "full" "[1 2; 1 2]"
    (Matrix.to_string (Canonical.canonical ~variant:Canonical.Full m));
  Alcotest.(check string)
    "positional" "[1 2; 2 1]"
    (Matrix.to_string (Canonical.canonical ~variant:Canonical.Positional m))

let test_equivalent () =
  let a = Matrix.create [| [| 1; 2 |]; [| 1; 1 |] |] in
  let b = Matrix.create [| [| 1; 1 |]; [| 2; 1 |] |] in
  check_true "equivalent" (Canonical.equivalent a b);
  let c = Matrix.create [| [| 1; 2 |]; [| 1; 2 |] |] in
  check_true "not equivalent" (not (Canonical.equivalent a c))

let test_is_canonical () =
  check_true "min is canonical"
    (Canonical.is_canonical (Matrix.create [| [| 1; 1 |]; [| 1; 2 |] |]));
  check_true "non-min is not"
    (not (Canonical.is_canonical (Matrix.create [| [| 1; 2 |]; [| 1; 1 |] |])))

(* Random props below draw from Gen (seeded, shrinking, repro-seed
   printing) rather than ad-hoc per-test RNG. The ~-move pair bundles
   the move into the generator so the whole counterexample is replayed
   and printed together. *)

let equiv_pair_arb =
  (* random_equivalent's alphabet moves require normalized rows *)
  let matrix = Gen.matrix_normalized () in
  Gen.make
    ~print:(fun (m, m') ->
      Printf.sprintf "%s ~ %s" (Matrix.to_string m) (Matrix.to_string m'))
    (fun st ->
      let m = matrix.Gen.gen st in
      (m, Canonical.random_equivalent st m))

let positional_pair_arb =
  let matrix = Gen.matrix_normalized () in
  Gen.make
    ~print:(fun (m, m') ->
      Printf.sprintf "%s ~ %s" (Matrix.to_string m) (Matrix.to_string m'))
    (fun st ->
      let m = matrix.Gen.gen st in
      let p, q = Matrix.dims m in
      let m' =
        (* positional ~-move: rows and columns only *)
        Matrix.permute_cols
          (Matrix.permute_rows m (Umrs_graph.Perm.random st p))
          (Umrs_graph.Perm.random st q)
      in
      (m, m'))

(* Randomized (p, q, d), kept to instances the full d^(pq) enumeration
   can afford inside the suite. *)
let instance_arb =
  let pool =
    [| (1, 1, 1); (1, 4, 4); (4, 1, 4); (2, 2, 2); (2, 2, 3); (2, 2, 4);
       (3, 2, 2); (2, 3, 3); (3, 3, 2); (2, 4, 3) |]
  in
  Gen.make
    ~print:(fun ((p, q, d), variant) ->
      Printf.sprintf "p=%d q=%d d=%d (%s)" p q d
        (match variant with
        | Canonical.Full -> "full"
        | Canonical.Positional -> "positional"))
    (fun st ->
      ( pool.(Random.State.int st (Array.length pool)),
        if Random.State.bool st then Canonical.Full else Canonical.Positional ))

let suite =
  [
    case "normalize_row" test_normalize_row;
    case "canonical (paper pair)" test_canonical_explicit;
    case "canonical uses column perms" test_canonical_uses_column_perm;
    case "full vs positional variants" test_canonical_full_relabels;
    case "equivalent" test_equivalent;
    case "is_canonical" test_is_canonical;
    Gen.prop ~count:200 "canonical is idempotent" (Gen.matrix ()) (fun m ->
        let c = Canonical.canonical m in
        Matrix.equal c (Canonical.canonical c));
    Gen.prop ~count:200 "canonical invariant under random ~-moves"
      equiv_pair_arb (fun (m, m') ->
        Matrix.equal (Canonical.canonical m) (Canonical.canonical m'));
    Gen.prop ~count:200 "canonical result has normalized rows" (Gen.matrix ())
      (fun m ->
        let c = Canonical.canonical m in
        let p, q = Matrix.dims c in
        List.for_all
          (fun i ->
            Canonical.normalize_row (Array.init q (Matrix.get c i))
            = Array.init q (Matrix.get c i))
          (List.init p Fun.id));
    Gen.prop ~count:200 "canonical <= input in lex order" (Gen.matrix ())
      (fun m -> Matrix.compare_lex (Canonical.canonical m) m <= 0);
    Gen.prop ~count:100 "positional canonical also idempotent/invariant"
      positional_pair_arb (fun (m, m') ->
        let pc = Canonical.canonical ~variant:Canonical.Positional in
        Matrix.equal (pc m) (pc m') && Matrix.equal (pc m) (pc (pc m)));
    Gen.prop ~count:25 "canonical sets are strictly sorted and dup-free"
      instance_arb (fun ((p, q, d), variant) ->
        let set = Enumerate.canonical_set ~variant ~p ~q ~d () in
        let rec strictly_increasing = function
          | a :: (b :: _ as rest) ->
            Matrix.compare_lex a b < 0 && strictly_increasing rest
          | _ -> true
        in
        strictly_increasing set
        && List.for_all (fun m -> Canonical.is_canonical ~variant m) set);
  ]
