open Umrs_graph
open Umrs_routing
open Umrs_core
open Helpers

(* ---------- RLE tables ---------- *)

let test_rle_roundtrip_petersen () =
  let g = Generators.petersen () in
  let m = Table_scheme.next_hop_matrix g in
  for v = 0 to 9 do
    let buf = Compressed_tables.encode_table ~degree:3 m.(v) ~skip:v in
    let back =
      Compressed_tables.decode_table buf ~order:10 ~degree:3 ~self:v
    in
    for dst = 0 to 9 do
      if dst <> v then check_int "entry" m.(v).(dst) back.(dst)
    done
  done

let test_rle_routes_correctly () =
  let g = Generators.torus 4 4 in
  let b = Compressed_tables.build g in
  check_true "stretch 1"
    (Routing_function.stretch_at_most b.Scheme.rf ~num:1 ~den:1)

let test_rle_compresses_structure () =
  (* ring tables are two giant runs; grid tables are long dimension
     runs: both compress. The hypercube's natural vertex order
     interleaves dimensions, and a star hub alternates ports on every
     entry - RLE gains nothing there (plain leaf tables are already
     zero-width). Structure in the table, not in the graph, is what
     compresses. *)
  check_true "ring compresses"
    (Compressed_tables.compression_ratio (Generators.cycle 64) < 0.6);
  check_true "grid compresses"
    (Compressed_tables.compression_ratio (Generators.grid 6 6) < 0.8);
  check_true "hypercube does not (natural order)"
    (Compressed_tables.compression_ratio (Generators.hypercube 5) >= 1.0);
  check_true "star does not (hub alternates)"
    (Compressed_tables.compression_ratio (Generators.star 64) >= 1.0)

let test_rle_fails_on_constraint_graphs () =
  (* Theorem 1, felt: at the constrained vertices of a graph of
     constraints the port sequence is a (near-)incompressible matrix
     row, so RLE gains little-to-nothing there *)
  let m =
    Matrix.create
      [| [| 1; 2; 3; 1; 3; 2; 2; 1; 3 |]; [| 1; 1; 2; 3; 2; 1; 3; 3; 2 |] |]
  in
  let t = Cgraph.of_matrix m in
  let g = t.Cgraph.graph in
  let plain = Table_scheme.build g in
  let rle = Compressed_tables.build g in
  (* compare at a constrained vertex *)
  let a = t.Cgraph.constrained.(0) in
  check_true "no local win at a constrained router"
    (Scheme.mem_at rle a >= Scheme.mem_at plain a)

let test_rle_vs_plain_on_corpus () =
  let st = rng () in
  List.iter
    (fun (name, g) ->
      let r = Compressed_tables.compression_ratio g in
      check_true (name ^ " ratio sane") (r > 0.0 && r < 8.0))
    (Generators.corpus st ~size:12)

(* ---------- parallel BFS ---------- *)

let test_parallel_matches_sequential () =
  let st = rng () in
  let g = Generators.random_connected st ~n:40 ~m:90 in
  check_true "same distances" (Parallel.all_pairs ~domains:4 g = Bfs.all_pairs g);
  check_true "one domain" (Parallel.all_pairs ~domains:1 g = Bfs.all_pairs g)

let test_parallel_weighted () =
  let st = rng () in
  let g = Generators.random_connected st ~n:24 ~m:60 in
  let w = Weighted.random st ~max_cost:7 g in
  check_true "same weighted distances"
    (Parallel.all_pairs_weighted ~domains:3 w = Weighted.all_pairs w)

(* ---------- shared distance cache ---------- *)

let test_dist_cache_hits_by_identity () =
  let st = rng () in
  let g = Generators.random_connected st ~n:20 ~m:40 in
  let h0, m0 = Dist_cache.stats () in
  let d1 = Dist_cache.distances g in
  let d2 = Dist_cache.distances g in
  let h1, m1 = Dist_cache.stats () in
  check_true "second lookup is the same matrix" (d1 == d2);
  check_true "correct distances" (d1 = Bfs.all_pairs g);
  check_int "one miss" (m0 + 1) m1;
  check_int "one hit" (h0 + 1) h1;
  (* an equal-but-distinct graph is a different identity *)
  let g' = Graph.of_edges ~n:(Graph.order g) (Graph.edges g) in
  check_true "structural twin recomputes"
    (not (Dist_cache.distances g' == d1));
  Dist_cache.clear ();
  check_true "clear drops the entry" (not (Dist_cache.distances g == d1))

let test_dist_cache_weighted () =
  let st = rng () in
  let g = Generators.random_connected st ~n:16 ~m:30 in
  let w = Weighted.random st ~max_cost:5 g in
  let d1 = Dist_cache.distances_weighted w in
  check_true "weighted cached" (d1 == Dist_cache.distances_weighted w);
  check_true "weighted correct" (d1 = Weighted.all_pairs w)

let test_map_range () =
  check_true "squares" (Parallel.map_range ~domains:3 10 (fun i -> i * i)
                        = Array.init 10 (fun i -> i * i));
  check_true "empty" (Parallel.map_range ~domains:2 0 (fun i -> i) = [||]);
  check_true "more domains than work"
    (Parallel.map_range ~domains:8 3 (fun i -> i) = [| 0; 1; 2 |])

(* ---------- bridges / articulation ---------- *)

let test_bridges_on_path () =
  let g = Generators.path 5 in
  check_true "all edges are bridges"
    (Props.bridges g = [ (0, 1); (1, 2); (2, 3); (3, 4) ])

let test_bridges_on_cycle () =
  check_true "no bridges" (Props.bridges (Generators.cycle 6) = [])

let test_barbell () =
  (* two triangles joined by one edge: that edge is the only bridge,
     its endpoints the only articulation points *)
  let g =
    Graph.of_edges ~n:6
      [ (0, 1); (1, 2); (2, 0); (3, 4); (4, 5); (5, 3); (2, 3) ]
  in
  check_true "one bridge" (Props.bridges g = [ (2, 3) ]);
  check_true "two articulation points" (Props.articulation_points g = [ 2; 3 ]);
  check_true "not biconnected" (not (Props.is_biconnected g))

let test_biconnected () =
  check_true "cycle biconnected" (Props.is_biconnected (Generators.cycle 5));
  check_true "complete biconnected" (Props.is_biconnected (Generators.complete 5));
  check_true "path not" (not (Props.is_biconnected (Generators.path 5)))

let test_bridge_kill_strands_traffic () =
  (* killing a bridge strands all cross-traffic, killing a non-bridge
     edge of a biconnected graph strands only crossing packets *)
  let g = Generators.path 4 in
  let rf = (Table_scheme.build g).Scheme.rf in
  let bridge = List.hd (Props.bridges g) in
  let s =
    Simulator.run_with_dead_links ~dead:[ bridge ] rf ~pairs:[ (0, 3); (3, 0) ]
  in
  check_int "all stranded" 0 s.Simulator.delivered

(* ---------- stretch-1 reconstruction & LIRS ---------- *)

let test_reconstruct_at_stretch_one () =
  let o =
    Reconstruct.run_experiment ~bound:Verify.shortest_paths_only ~p:2 ~q:2
      ~d:3 ~scheme:Table_scheme.build ()
  in
  check_true "forced at s=1 too" o.Reconstruct.all_forced;
  check_true "recovered" o.Reconstruct.all_recovered

let test_linear_compactness () =
  let st = rng () in
  let t = Generators.random_tree st 20 in
  let c = Interval_routing.compile t in
  check_true "linear >= cyclic"
    (Interval_routing.linear_compactness c >= Interval_routing.compactness c);
  (* on a path with identity labels both are 1 *)
  let p = Interval_routing.compile ~labelling:Interval_routing.Identity (Generators.path 9) in
  check_int "path linear 1" 1 (Interval_routing.linear_compactness p);
  (* DFS tree labelling: the parent arc wraps, so LIRS pays 2 *)
  let star = Interval_routing.compile (Generators.star 8) in
  check_true "wrap costs a linear interval"
    (Interval_routing.linear_compactness star
    >= Interval_routing.compactness star)

let suite =
  [
    case "rle roundtrip" test_rle_roundtrip_petersen;
    case "rle routes correctly" test_rle_routes_correctly;
    case "rle compresses structured tables" test_rle_compresses_structure;
    case "rle gains nothing on constraint rows" test_rle_fails_on_constraint_graphs;
    case "rle sane on corpus" test_rle_vs_plain_on_corpus;
    case "parallel = sequential BFS" test_parallel_matches_sequential;
    case "parallel weighted" test_parallel_weighted;
    case "map_range" test_map_range;
    case "distance cache hits by identity" test_dist_cache_hits_by_identity;
    case "distance cache (weighted)" test_dist_cache_weighted;
    case "bridges on a path" test_bridges_on_path;
    case "no bridges on a cycle" test_bridges_on_cycle;
    case "barbell bridge + articulation" test_barbell;
    case "biconnectivity" test_biconnected;
    case "dead bridge strands traffic" test_bridge_kill_strands_traffic;
    case "reconstruction at stretch 1" test_reconstruct_at_stretch_one;
    case "linear vs cyclic compactness" test_linear_compactness;
    prop ~count:30 "rle decode inverts encode on random graphs"
      arbitrary_connected_graph (fun g ->
        let n = Graph.order g in
        let m = Table_scheme.next_hop_matrix g in
        let ok = ref true in
        for v = 0 to n - 1 do
          let deg = Graph.degree g v in
          let buf = Compressed_tables.encode_table ~degree:deg m.(v) ~skip:v in
          let back = Compressed_tables.decode_table buf ~order:n ~degree:deg ~self:v in
          for dst = 0 to n - 1 do
            if dst <> v && back.(dst) <> m.(v).(dst) then ok := false
          done
        done;
        !ok);
    prop ~count:30 "bridges are exactly the disconnecting edges"
      arbitrary_connected_graph (fun g ->
        let bridge_set = Props.bridges g in
        List.for_all
          (fun (u, v) ->
            let without =
              Graph.of_edges ~n:(Graph.order g)
                (List.filter (fun e -> e <> (u, v)) (Graph.edges g))
            in
            let disconnects = not (Graph.is_connected without) in
            disconnects = List.mem (u, v) bridge_set)
          (Graph.edges g));
    prop ~count:20 "parallel map matches init" (QCheck.small_nat)
      (fun n ->
        let n = n mod 50 in
        Parallel.map_range ~domains:3 n (fun i -> (i * 7) mod 13)
        = Array.init n (fun i -> (i * 7) mod 13));
  ]
