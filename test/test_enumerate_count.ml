open Umrs_core
open Helpers

let test_iter_matrices_cardinality () =
  let count = ref 0 in
  Enumerate.iter_matrices ~p:2 ~q:2 ~d:3 (fun _ -> incr count);
  check_int "3^4 raw matrices" 81 !count;
  let count = ref 0 in
  Enumerate.iter_matrices ~p:1 ~q:3 ~d:2 (fun _ -> incr count);
  check_int "2^3 raw matrices" 8 !count

let test_canonical_set_full_322 () =
  let set = Enumerate.canonical_set ~p:2 ~q:2 ~d:3 () in
  check_int "|3M(2,2)| full" 3 (List.length set);
  check_true "all canonical" (List.for_all Canonical.is_canonical set);
  let strings = List.map Matrix.to_string set in
  check_true "expected members"
    (strings = [ "[1 1; 1 1]"; "[1 1; 1 2]"; "[1 2; 1 2]" ])

let test_canonical_set_positional_222 () =
  (* the paper's displayed example set has 7 members *)
  check_int "|2M(2,2)| positional" 7
    (Enumerate.count ~variant:Canonical.Positional ~p:2 ~q:2 ~d:2 ())

let test_class_sizes_partition () =
  let set = Enumerate.canonical_set ~p:2 ~q:2 ~d:3 () in
  let total =
    List.fold_left
      (fun acc m -> acc + Enumerate.class_size ~p:2 ~q:2 ~d:3 m)
      0 set
  in
  check_int "classes partition the 81 matrices" 81 total

let test_class_sizes_partition_positional () =
  let set =
    Enumerate.canonical_set ~variant:Canonical.Positional ~p:2 ~q:2 ~d:2 ()
  in
  let total =
    List.fold_left
      (fun acc m ->
        acc + Enumerate.class_size ~variant:Canonical.Positional ~p:2 ~q:2 ~d:2 m)
      0 set
  in
  check_int "positional classes partition the 16 matrices" 16 total

let test_count_monotone_in_d () =
  let c2 = Enumerate.count ~p:2 ~q:2 ~d:2 () in
  let c3 = Enumerate.count ~p:2 ~q:2 ~d:3 () in
  check_true "monotone" (c2 <= c3)

let test_single_row_column () =
  (* p=1: classes = number of set partitions shapes of q slots = partitions
     of the multiset positions; for q=2, d>=2: (1,1) and (1,2) *)
  check_int "1x2" 2 (Enumerate.count ~p:1 ~q:2 ~d:2 ());
  (* q=1: every row is (1); all matrices collapse *)
  check_int "3x1" 1 (Enumerate.count ~p:3 ~q:1 ~d:3 ())

let test_guard () =
  check_true "blow-up guarded"
    (try ignore (Enumerate.canonical_set ~p:4 ~q:4 ~d:5 ()); false
     with Invalid_argument _ -> true)

let test_lemma1_exact_values () =
  check_true "bound (2,2,3)"
    (Bignat.to_int_opt (Count.lemma1_bound ~p:2 ~q:2 ~d:3) = Some 0);
  (* d^pq/(p!q!(d!)^p) for p=2,q=3,d=2: 64/(2*6*4) = 1 *)
  check_true "bound (2,3,2)"
    (Bignat.to_int_opt (Count.lemma1_bound ~p:2 ~q:3 ~d:2) = Some 1);
  check_true "total raw"
    (Bignat.to_int_opt (Count.total_raw ~p:2 ~q:3 ~d:2) = Some 64)

let test_lemma1_holds_on_grid () =
  List.iter
    (fun (p, q, d) ->
      check_true
        (Printf.sprintf "lemma1 (%d,%d,%d)" p q d)
        (Count.holds_exactly ~p ~q ~d ()))
    [ (1, 1, 2); (1, 2, 2); (2, 2, 2); (2, 2, 3); (2, 3, 2); (3, 2, 2);
      (1, 4, 3); (2, 4, 2); (3, 3, 2); (2, 2, 4) ]

let test_log2_lemma1_matches_exact () =
  (* log-space formula equals log2 of the exact ratio (before floor) *)
  let p = 2 and q = 3 and d = 2 in
  let exactf =
    Bignat.log2 (Count.total_raw ~p ~q ~d)
    -. Bignat.log2
         (Bignat.mul
            (Bignat.mul (Bignat.factorial p) (Bignat.factorial q))
            (Bignat.pow (Bignat.factorial d) p))
  in
  Alcotest.(check (float 1e-6))
    "log space" exactf
    (Count.log2_lemma1_bound ~p ~q ~d)

let test_log2_lemma1_large_params () =
  (* Theorem-1 scale: must not overflow and must be large *)
  let b = Count.log2_lemma1_bound ~p:32 ~q:512 ~d:15 in
  check_true "positive and large" (b > 50000.0 && b < 70000.0)


let test_full_burnside_matches_enumeration () =
  List.iter
    (fun (p, q, d) ->
      check_true
        (Printf.sprintf "full burnside (%d,%d,%d)" p q d)
        (Bignat.to_int_opt (Count.full_exact ~p ~q ~d)
        = Some (Enumerate.count ~p ~q ~d ())))
    [ (1, 1, 1); (2, 2, 2); (2, 2, 3); (2, 3, 2); (3, 2, 2); (3, 3, 3);
      (2, 2, 4); (1, 4, 3); (2, 4, 2) ]

let test_full_burnside_at_scale () =
  (* beyond enumeration; sanity-bounded by d^(pq)/(group) <= x <= positional *)
  let x = Count.full_exact ~p:4 ~q:4 ~d:4 in
  check_true "4,4,4" (Bignat.to_int_opt x = Some 269);
  let big = Count.full_exact ~p:8 ~q:8 ~d:8 in
  check_true "8,8,8 positive" (Bignat.compare big Bignat.zero > 0);
  check_true "full <= positional"
    (Bignat.compare big (Count.positional_exact ~p:8 ~q:8 ~d:8) <= 0)

let test_full_burnside_agrees_with_monte_carlo () =
  let st = rng () in
  let e = Orbit.estimate_classes st ~samples:300 ~p:3 ~q:4 ~d:3 in
  match Bignat.to_int_opt (Count.full_exact ~p:3 ~q:4 ~d:3) with
  | Some exact ->
    check_int "exact is 58" 58 exact;
    check_true "MC within 4 sigma"
      (Float.abs (e.Orbit.mean -. float_of_int exact)
      <= (4.0 *. e.Orbit.std_error) +. 1.0)
  | None -> Alcotest.fail "expected an int"

let suite =
  [
    case "raw matrix cardinality" test_iter_matrices_cardinality;
    case "|3M(2,2)| = 3 (full group)" test_canonical_set_full_322;
    case "|2M(2,2)| = 7 (positional, paper display)" test_canonical_set_positional_222;
    case "class sizes partition (full)" test_class_sizes_partition;
    case "class sizes partition (positional)" test_class_sizes_partition_positional;
    case "count monotone in d" test_count_monotone_in_d;
    case "degenerate shapes" test_single_row_column;
    case "enumeration guard" test_guard;
    case "lemma 1 exact values" test_lemma1_exact_values;
    case "lemma 1 holds on a parameter grid" test_lemma1_holds_on_grid;
    case "full-group burnside = enumeration" test_full_burnside_matches_enumeration;
    case "full-group burnside at scale" test_full_burnside_at_scale;
    case "full-group burnside vs monte carlo" test_full_burnside_agrees_with_monte_carlo;
    case "log-space lemma 1 matches exact" test_log2_lemma1_matches_exact;
    case "log-space lemma 1 at theorem scale" test_log2_lemma1_large_params;
    prop ~count:50 "every raw matrix canonicalizes into the set"
      (QCheck.make ~print:string_of_int QCheck.Gen.(map (fun x -> abs x mod 81) int))
      (fun idx ->
        let set = Enumerate.canonical_set ~p:2 ~q:2 ~d:3 () in
        let i = ref 0 in
        let found = ref None in
        Enumerate.iter_matrices ~p:2 ~q:2 ~d:3 (fun m ->
            if !i = idx then found := Some m;
            incr i);
        match !found with
        | Some m ->
          List.exists (Matrix.equal (Canonical.canonical m)) set
        | None -> false);
  ]
