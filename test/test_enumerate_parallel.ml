(* The parallel enumeration engine: sequential and sharded runs must
   be byte-identical for any domain count; packed matrix keys must
   collide exactly on equal matrices across all three representations
   (one int, two ints, bytes fallback); the configurable cap must
   report the offending d^(pq). *)

open Umrs_core
open Helpers

let show_set set = String.concat "|" (List.map Matrix.to_string set)

let grid =
  [ (1, 2, 2); (2, 2, 2); (2, 2, 3); (2, 3, 2); (3, 2, 2); (2, 2, 4);
    (2, 3, 3); (3, 3, 2) ]

let test_seq_vs_parallel_full () =
  List.iter
    (fun (p, q, d) ->
      let seq = Enumerate.canonical_set ~domains:1 ~p ~q ~d () in
      List.iter
        (fun domains ->
          let par = Enumerate.canonical_set ~domains ~p ~q ~d () in
          Alcotest.(check string)
            (Printf.sprintf "(%d,%d,%d) domains=%d" p q d domains)
            (show_set seq) (show_set par))
        [ 2; 3; 5; 8 ])
    grid

let test_seq_vs_parallel_positional () =
  List.iter
    (fun (p, q, d) ->
      let variant = Canonical.Positional in
      let seq = Enumerate.canonical_set ~variant ~domains:1 ~p ~q ~d () in
      let par = Enumerate.canonical_set ~variant ~domains:4 ~p ~q ~d () in
      Alcotest.(check string)
        (Printf.sprintf "positional (%d,%d,%d)" p q d)
        (show_set seq) (show_set par))
    [ (2, 2, 2); (2, 3, 2); (3, 2, 2); (2, 2, 3) ]

let test_parallel_matches_burnside () =
  List.iter
    (fun (p, q, d) ->
      check_int
        (Printf.sprintf "burnside (%d,%d,%d)" p q d)
        (Option.get (Bignat.to_int_opt (Count.full_exact ~p ~q ~d)))
        (Enumerate.count ~domains:4 ~p ~q ~d ()))
    grid

let test_parallel_class_sizes_partition () =
  List.iter
    (fun (p, q, d) ->
      let set = Enumerate.canonical_set ~domains:3 ~p ~q ~d () in
      let total =
        List.fold_left
          (fun acc m -> acc + Enumerate.class_size ~domains:3 ~p ~q ~d m)
          0 set
      in
      let raw = int_of_float (Float.pow (float_of_int d) (float_of_int (p * q))) in
      check_int (Printf.sprintf "partition (%d,%d,%d)" p q d) raw total)
    [ (2, 2, 3); (2, 3, 2); (3, 2, 2) ]

let test_cap_configurable () =
  (* a lowered cap rejects instances the default allows... *)
  check_true "cap 100 rejects 4^4 = 256"
    (try
       ignore (Enumerate.canonical_set ~cap:100 ~p:2 ~q:2 ~d:4 ());
       false
     with Invalid_argument msg ->
       (* ...and the message names the offending value and the cap *)
       let contains s sub =
         let n = String.length s and m = String.length sub in
         let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
         go 0
       in
       contains msg "256" && contains msg "100");
  check_true "cap 100 still admits 3^4 = 81"
    (List.length (Enumerate.canonical_set ~cap:100 ~p:2 ~q:2 ~d:3 ()) = 3);
  (* ...and raising the cap admits what a lower cap rejected *)
  check_true "cap 300 admits 4^4 = 256"
    (Enumerate.count ~cap:300 ~p:2 ~q:2 ~d:4 () = 3);
  check_true "default cap unchanged"
    (Enumerate.default_cap = 1 lsl 22);
  check_true "default cap still rejects 5^16"
    (try
       ignore (Enumerate.count ~p:4 ~q:4 ~d:5 ());
       false
     with Invalid_argument _ -> true)

let test_iter_entries_range_partition () =
  (* the shard iterator covers the digit space exactly, in order *)
  let p = 2 and q = 2 and d = 3 in
  let whole = ref [] in
  Enumerate.iter_matrices ~p ~q ~d (fun m -> whole := Matrix.to_string m :: !whole);
  let pieces = ref [] in
  List.iter
    (fun (lo, hi) ->
      Enumerate.iter_entries_range ~p ~q ~d ~lo ~hi (fun e ->
          pieces := Matrix.to_string (Matrix.create_relaxed e) :: !pieces))
    [ (0, 17); (17, 17); (17, 64); (64, 81) ];
  Alcotest.(check (list string))
    "sharded iteration = whole iteration" (List.rev !whole) (List.rev !pieces)

(* --- packed keys ---------------------------------------------------- *)

let random_matrix st ~p ~q ~base =
  Matrix.create_relaxed
    (Array.init p (fun _ ->
         Array.init q (fun _ -> 1 + Random.State.int st base)))

let key_collision_prop ~p ~q ~base ~count name =
  let st = rng () in
  for _ = 1 to count do
    let a = random_matrix st ~p ~q ~base in
    let b = random_matrix st ~p ~q ~base in
    let ka = Mkey.of_matrix ~base a and kb = Mkey.of_matrix ~base b in
    check_true
      (Printf.sprintf "%s: keys agree with equality" name)
      (Mkey.equal ka kb = Matrix.equal a b);
    check_true
      (Printf.sprintf "%s: key is deterministic" name)
      (Mkey.equal ka (Mkey.of_matrix ~base a))
  done

let test_packed_key_one_word () =
  (* 18 + 4*4*2 = 50 bits: single-int representation *)
  check_true "K1 regime is packed"
    (Mkey.is_packed
       (Mkey.of_matrix ~base:4 (random_matrix (rng ()) ~p:4 ~q:4 ~base:4)));
  key_collision_prop ~p:4 ~q:4 ~base:4 ~count:300 "one-word"

let test_packed_key_two_words () =
  (* 18 + 2*16*3 = 114 bits: two-int representation *)
  check_true "K2 regime is packed"
    (Mkey.is_packed
       (Mkey.of_matrix ~base:8 (random_matrix (rng ()) ~p:2 ~q:16 ~base:8)));
  key_collision_prop ~p:2 ~q:16 ~base:8 ~count:300 "two-word"

let test_packed_key_bytes_fallback () =
  (* 18 + 6*16*3 = 306 bits: bytes fallback *)
  check_true "KBig regime is not packed"
    (not
       (Mkey.is_packed
          (Mkey.of_matrix ~base:8 (random_matrix (rng ()) ~p:6 ~q:16 ~base:8))));
  key_collision_prop ~p:6 ~q:16 ~base:8 ~count:150 "bytes"

let test_packed_key_shape_disambiguation () =
  (* same digit stream, different shapes: the header must separate them *)
  let a = Matrix.create_relaxed [| [| 1; 2 |] |] in
  let b = Matrix.create_relaxed [| [| 1 |]; [| 2 |] |] in
  check_true "1x2 vs 2x1 differ"
    (not (Mkey.equal (Mkey.of_matrix ~base:2 a) (Mkey.of_matrix ~base:2 b)));
  (* same matrix under different bases must also differ (layout changes) *)
  check_true "base is part of the key"
    (not (Mkey.equal (Mkey.of_matrix ~base:2 a) (Mkey.of_matrix ~base:3 a)))

let test_packed_key_rejects_out_of_range () =
  let m = Matrix.create_relaxed [| [| 1; 5 |] |] in
  check_true "entry > base rejected"
    (try
       ignore (Mkey.of_matrix ~base:4 m);
       false
     with Invalid_argument _ -> true)

let suite =
  [
    case "sequential = parallel (full group)" test_seq_vs_parallel_full;
    case "sequential = parallel (positional)" test_seq_vs_parallel_positional;
    case "parallel count = burnside closed form" test_parallel_matches_burnside;
    case "parallel class sizes partition d^(pq)" test_parallel_class_sizes_partition;
    case "cap is configurable and reported" test_cap_configurable;
    case "shard iterator partitions the space" test_iter_entries_range_partition;
    case "packed keys: one-word regime" test_packed_key_one_word;
    case "packed keys: two-word regime" test_packed_key_two_words;
    case "packed keys: bytes fallback" test_packed_key_bytes_fallback;
    case "packed keys: shape in the key" test_packed_key_shape_disambiguation;
    case "packed keys: range checking" test_packed_key_rejects_out_of_range;
    prop ~count:200 "workspace canonical = Canonical.canonical" arbitrary_matrix
      (fun m ->
        let p, q = Matrix.dims m in
        let ws = Canonical.workspace ~p ~q ~max_value:(Matrix.max_entry m) in
        let fast =
          Matrix.create_relaxed
            (Canonical.canonical_rows ws ~variant:Canonical.Full
               (Array.init p (fun i -> Array.init q (Matrix.get m i))))
        in
        Matrix.equal fast (Canonical.canonical m));
  ]
