(* The cluster subsystem end to end: shard-map codec and routing
   invariants, corpus splitting (pieces re-concatenate to the source,
   byte for byte), the checksummed map file, and live clusters - a
   differential check that a sharded cluster answers byte-identically
   to a single server over the unsharded corpus, replica failover when
   primaries die, and transparent shard-map refresh after a stale
   verdict. *)

open Umrs_core
open Helpers
module Corpus = Umrs_store.Corpus
module Shard = Umrs_store.Shard
module Q = Umrs_store.Query
module Wire = Umrs_server.Wire
module Server = Umrs_server.Server
module C = Umrs_client
module Shard_map = Umrs_cluster.Shard_map
module Cluster = Umrs_cluster.Cluster
module Cl = Umrs_cluster.Client
module Co = Umrs_cluster.Coordinator
module Ms = Umrs_cluster.Membership
module Fault = Umrs_fault.Fault

let with_tmp_dir f =
  let dir = Filename.temp_file "umrs_cluster" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let rec rm path =
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm (Filename.concat path e)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path
  in
  Fun.protect ~finally:(fun () -> rm dir) (fun () -> f dir)

let ok_client what = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %s" what (C.error_to_string e)

let ok_server what = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %s" what e

let build_corpus dir =
  let corpus = Filename.concat dir "ref.corpus" in
  ignore (Umrs_store.Builder.build ~p:2 ~q:3 ~d:3 ~out:corpus ());
  (match Q.build ~corpus () with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "index build: %s" (Q.error_to_string e));
  corpus

(* A corpus split three ways plus a map over synthetic endpoints - the
   fixture for every test that needs a topology but no live servers. *)
let split_fixture dir ~shards =
  let corpus = build_corpus dir in
  let pieces =
    match Shard.split ~corpus ~shards () with
    | Ok ps -> ps
    | Error e -> Alcotest.failf "split: %s" e
  in
  let endpoints =
    Array.init (Array.length pieces) (fun k ->
        ( Wire.Unix_sock (Printf.sprintf "/run/n%dp.sock" k),
          [ Wire.Tcp (Printf.sprintf "replica-%d.local" k, 7700 + k) ] ))
  in
  let map =
    Shard_map.build ~source:(Corpus.info ~path:corpus) ~version:3 ~pieces
      ~endpoints
  in
  (corpus, pieces, map)

let with_cluster ~shards ?(replicas = 0) ?map_version dir f =
  let corpus = build_corpus dir in
  let cdir = Filename.concat dir "cluster" in
  match Cluster.start ~corpus ~shards ~dir:cdir ~replicas ?map_version () with
  | Error e -> Alcotest.failf "cluster start: %s" e
  | Ok t ->
    Fun.protect
      ~finally:(fun () ->
        Cluster.shutdown t;
        Cluster.wait t)
      (fun () -> f corpus t)

(* ---------- wire codec and stale verdicts ---------- *)

let test_map_codec_roundtrip () =
  with_tmp_dir @@ fun dir ->
  let _, _, map = split_fixture dir ~shards:3 in
  check_true "built map validates" (Wire.validate_shard_map map = Ok ());
  let map' = Wire.shard_map_of_bytes (Wire.shard_map_to_bytes map) in
  check_true "map round-trips through the codec" (map = map');
  check_true "corpus identity preserved"
    (Wire.corpus_header_of_map map' = Wire.corpus_header_of_map map);
  (* a stale-shard verdict carries a version the client can parse back *)
  (match Wire.stale_shard_reject ~version:7 with
  | Wire.Rejected msg ->
    check_true "stale verdict parses back"
      (Wire.stale_shard_version msg = Some 7)
  | _ -> Alcotest.fail "stale reject must be a Rejected verdict");
  check_true "ordinary rejections do not parse as stale"
    (Wire.stale_shard_version "no such record" = None)

let test_validate_rejects_broken_maps () =
  with_tmp_dir @@ fun dir ->
  let _, _, map = split_fixture dir ~shards:3 in
  let broken what m =
    match Wire.validate_shard_map m with
    | Error _ -> ()
    | Ok () -> Alcotest.failf "%s: accepted" what
  in
  let sh = map.Wire.sm_shards in
  broken "no shards" { map with Wire.sm_shards = [||] };
  broken "range gap"
    { map with
      Wire.sm_shards =
        [| sh.(0); { sh.(1) with Wire.sh_lo = sh.(1).Wire.sh_lo + 1 }; sh.(2) |] };
  broken "last shard stops short"
    { map with
      Wire.sm_shards =
        [| sh.(0); sh.(1); { sh.(2) with Wire.sh_hi = sh.(2).Wire.sh_hi - 1 } |] };
  broken "empty shard"
    { map with
      Wire.sm_shards =
        [| sh.(0); { sh.(1) with Wire.sh_hi = sh.(1).Wire.sh_lo } |] };
  broken "boundary keys out of order"
    { map with
      Wire.sm_shards =
        [| sh.(0); { sh.(1) with Wire.sh_key = sh.(0).Wire.sh_key }; sh.(2) |] };
  broken "boundary key arity"
    { map with
      Wire.sm_shards = [| { sh.(0) with Wire.sh_key = [| 1; 1 |] }; sh.(1); sh.(2) |] }

(* ---------- routing invariants against a real corpus ---------- *)

let test_routing_invariants () =
  with_tmp_dir @@ fun dir ->
  let corpus, _, map = split_fixture dir ~shards:3 in
  let _, records = Corpus.load ~path:corpus in
  let count = List.length records in
  let ns = Array.length map.Wire.sm_shards in
  check_int "three shards" 3 ns;
  List.iteri
    (fun i m ->
      let owner = Wire.route_index map i in
      let sh = map.Wire.sm_shards.(owner) in
      check_true "rank lies inside its owner's range"
        (sh.Wire.sh_lo <= i && i < sh.Wire.sh_hi);
      check_int "key routes to the rank's shard" owner (Wire.route_matrix map m);
      check_int "raw key agrees" owner (Wire.route_key map (Wire.matrix_key m));
      let a, b = Wire.route_prefix map (Wire.matrix_key m) in
      check_true "full-key span covers the owner" (a <= owner && owner <= b))
    records;
  check_true "rank = count is out of range"
    (match Wire.route_index map count with
    | exception Invalid_argument _ -> true
    | _ -> false);
  check_true "negative rank is out of range"
    (match Wire.route_index map (-1) with
    | exception Invalid_argument _ -> true
    | _ -> false);
  check_int "a key below every boundary routes to shard 0" 0
    (Wire.route_key map (Array.make 6 0));
  check_true "the empty prefix spans every shard"
    (Wire.route_prefix map [||] = (0, ns - 1))

(* ---------- splitting: nothing lost, nothing reordered ---------- *)

let test_split_preserves_the_corpus () =
  with_tmp_dir @@ fun dir ->
  let corpus, pieces, _ = split_fixture dir ~shards:3 in
  let _, originals = Corpus.load ~path:corpus in
  let count = List.length originals in
  let reassembled =
    Array.to_list pieces
    |> List.concat_map (fun pc -> snd (Corpus.load ~path:pc.Shard.pc_corpus))
  in
  check_int "every record present" count (List.length reassembled);
  List.iter2
    (fun a b -> check_true "records equal, in source order" (Matrix.equal a b))
    originals reassembled;
  Array.iteri
    (fun k pc ->
      let v = Corpus.verify ~path:pc.Shard.pc_corpus in
      check_true "piece is an intact corpus" (v.Corpus.v_problems = []);
      check_int "piece count matches its range" (pc.Shard.pc_hi - pc.Shard.pc_lo)
        v.Corpus.v_records_read;
      let lo, hi = Shard.bounds ~count ~shards:3 k in
      check_int "lo is the contract" lo pc.Shard.pc_lo;
      check_int "hi is the contract" hi pc.Shard.pc_hi;
      check_true "boundary key is the first record's key"
        (pc.Shard.pc_key = Shard.matrix_key (List.nth originals pc.Shard.pc_lo));
      check_true "piece has a usable index"
        (match Q.open_ ~corpus:pc.Shard.pc_corpus () with
        | Ok q ->
          Q.close q;
          true
        | Error _ -> false))
    pieces;
  check_true "more shards than records is an error, not a crash"
    (match Shard.split ~corpus ~shards:(count + 1) () with
    | Error _ -> true
    | Ok _ -> false);
  check_true "shards < 1 is a caller error"
    (match Shard.split ~corpus ~shards:0 () with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ---------- the map file ---------- *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let b = Bytes.create n in
  really_input ic b 0 n;
  close_in ic;
  b

let write_file path b =
  let oc = open_out_bin path in
  output_bytes oc b;
  close_out oc

let test_map_file_roundtrip_and_corruption () =
  with_tmp_dir @@ fun dir ->
  let _, _, map = split_fixture dir ~shards:3 in
  let path = Filename.concat dir "m.umrsm" in
  Shard_map.save ~path map;
  (match Shard_map.load ~path with
  | Ok m -> check_true "load returns what save wrote" (m = map)
  | Error e -> Alcotest.failf "load: %s" e);
  let original = read_file path in
  let flip b i =
    let c = Bytes.copy b in
    Bytes.set c i (Char.chr (Char.code (Bytes.get c i) lxor 0xFF));
    c
  in
  let corrupt what bytes =
    write_file path bytes;
    match Shard_map.load ~path with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%s went undetected" what
  in
  corrupt "a bad magic" (flip original 0);
  corrupt "an unknown schema" (flip original 8);
  corrupt "a flipped payload byte" (flip original (Bytes.length original - 1));
  corrupt "a truncated payload" (Bytes.sub original 0 (Bytes.length original - 3));
  corrupt "a file shorter than the header" (Bytes.sub original 0 10);
  (* corruption detection is non-destructive: the original still loads *)
  write_file path original;
  check_true "pristine bytes still load"
    (match Shard_map.load ~path with Ok m -> m = map | Error _ -> false)

(* ---------- live cluster: differential against a single node ---------- *)

let test_differential_cluster_equals_single_node () =
  with_tmp_dir @@ fun dir ->
  with_cluster ~shards:3 ~replicas:1 dir @@ fun corpus cl ->
  check_int "nodes running" 6 (Cluster.live_nodes cl);
  (match Shard_map.load ~path:(Cluster.map_path cl) with
  | Ok m -> check_true "persisted map matches the live one" (m = Cluster.map cl)
  | Error e -> Alcotest.failf "persisted map: %s" e);
  (* the reference: one server over the unsharded corpus *)
  let saddr = Wire.Unix_sock (Filename.concat dir "single.sock") in
  let cfg =
    { (Server.default_config saddr) with
      Server.corpus = Some corpus; workers = 2; queue_capacity = 32;
      cache_capacity = 8 }
  in
  let srv = ok_server "single start" (Server.start cfg) in
  Fun.protect
    ~finally:(fun () ->
      Server.shutdown srv;
      Server.wait srv)
  @@ fun () ->
  let sc = ok_client "single connect" (C.connect ~retries:5 saddr) in
  Fun.protect ~finally:(fun () -> C.close sc) @@ fun () ->
  (* bootstrap the routing client from a replica, not a primary *)
  let cc = ok_client "fetch map" (Cl.fetch (Cluster.addr cl ~shard:1 ~role:1)) in
  Fun.protect ~finally:(fun () -> Cl.close cc) @@ fun () ->
  ok_client "cluster ping" (Cl.ping cc);
  let h = ok_client "cluster info" (Cl.corpus_info cc) in
  check_true "cluster header = single header"
    (h = ok_client "single info" (C.corpus_info sc));
  let n = h.Corpus.count in
  check_true "corpus non-trivial" (n >= 3);
  for i = 0 to n - 1 do
    let m = ok_client "single nth" (C.nth sc i) in
    check_true "nth equal" (Matrix.equal m (ok_client "cluster nth" (Cl.nth cc i)));
    check_true "mem equal"
      (ok_client "cluster mem" (Cl.mem cc m) = ok_client "single mem" (C.mem sc m));
    check_int "rank equal"
      (ok_client "single rank" (C.rank sc m))
      (ok_client "cluster rank" (Cl.rank cc m));
    check_true "cgraph equal"
      (ok_client "cluster cgraph" (Cl.cgraph cc i)
      = ok_client "single cgraph" (C.cgraph sc i))
  done;
  (* prefix ranges exercise every span shape: all shards, one shard,
     shard boundaries, and prefixes with no matches *)
  List.iter
    (fun prefix ->
      check_true "range_prefix equal"
        (ok_client "cluster range" (Cl.range_prefix cc prefix)
        = ok_client "single range" (C.range_prefix sc prefix)))
    [ [||]; [| 1 |]; [| 2 |]; [| 3 |]; [| 1; 2 |]; [| 1; 1; 2 |];
      [| 2; 3; 1 |]; [| 1; 2; 1; 1; 1; 2 |] ];
  let absent = Matrix.create_relaxed [| [| 3; 3; 3 |]; [| 3; 3; 3 |] |] in
  check_true "absent mem equal"
    (ok_client "cluster mem" (Cl.mem cc absent)
    = ok_client "single mem" (C.mem sc absent));
  check_int "absent rank equal"
    (ok_client "single rank" (C.rank sc absent))
    (ok_client "cluster rank" (Cl.rank cc absent));
  (* one batch of every shape: buckets per shard, reassembles in order *)
  let m0 = ok_client "m0" (C.nth sc 0) in
  let reqs =
    [ Wire.Ping 77; Wire.Nth 0; Wire.Range_prefix [||]; Wire.Mem m0;
      Wire.Rank m0; Wire.Nth (n - 1); Wire.Range_prefix [| 1 |];
      Wire.Nth (n / 2) ]
  in
  let cluster_rs = Cl.batch cc reqs in
  let single_rs = C.call_pipelined sc reqs in
  check_int "batch answered in full" (List.length reqs) (List.length cluster_rs);
  List.iter2
    (fun a b ->
      check_true "batch slot equal"
        (ok_client "cluster slot" a = ok_client "single slot" b))
    cluster_rs single_rs;
  (* out of range comes back Refused, exactly as a single server answers *)
  (match Cl.nth cc (n + 5) with
  | Error (C.Refused _) -> ()
  | _ -> Alcotest.fail "out-of-range nth must be Refused");
  match Cl.nth cc (-1) with
  | Error (C.Refused _) -> ()
  | _ -> Alcotest.fail "negative nth must be Refused"

(* ---------- failover: killing primaries is invisible ---------- *)

let test_failover_survives_primary_loss () =
  with_tmp_dir @@ fun dir ->
  with_cluster ~shards:2 ~replicas:1 dir @@ fun corpus cl ->
  let _, records = Corpus.load ~path:corpus in
  let n = List.length records in
  let cc = ok_client "fetch" (Cl.fetch (Cluster.addr cl ~shard:0 ~role:0)) in
  Fun.protect ~finally:(fun () -> Cl.close cc) @@ fun () ->
  (* warm every group through its primary *)
  for i = 0 to n - 1 do
    ignore (ok_client "warm nth" (Cl.nth cc i))
  done;
  check_int "all nodes up" 4 (Cluster.live_nodes cl);
  (* kill every primary: the replicas must absorb the whole keyspace *)
  Cluster.kill_primary cl 0;
  Cluster.kill_primary cl 1;
  check_int "only replicas left" 2 (Cluster.live_nodes cl);
  List.iteri
    (fun i m ->
      check_true "answers unchanged after the kill"
        (Matrix.equal m (ok_client "nth after kill" (Cl.nth cc i))))
    records;
  check_true "ranges still merge"
    (match Cl.range_prefix cc [||] with Ok (0, h) -> h = n | _ -> false);
  ok_client "ping after kill" (Cl.ping cc);
  let s = Cl.stats cc in
  check_true "failovers recorded" (s.Cl.s_failovers >= 2);
  check_int "graceful kills crash no workers" 0 (Cluster.worker_crashes cl);
  (* kill is idempotent *)
  Cluster.kill_primary cl 0;
  check_int "idempotent kill" 2 (Cluster.live_nodes cl)

(* ---------- stale shard map: refresh, re-route, answer ---------- *)

let test_stale_map_refreshes_transparently () =
  with_tmp_dir @@ fun dir ->
  with_cluster ~shards:2 ~map_version:2 dir @@ fun corpus cl ->
  let _, records = Corpus.load ~path:corpus in
  (* a client holding version 1 with the endpoint groups swapped: every
     routed request lands on the wrong node, whose stale verdict names
     version 2; the client must refresh once and answer correctly *)
  let live = Cluster.map cl in
  let sh = live.Wire.sm_shards in
  let doctored =
    { live with
      Wire.sm_version = 1;
      sm_shards =
        [| { sh.(0) with Wire.sh_primary = sh.(1).Wire.sh_primary;
             sh_replicas = sh.(1).Wire.sh_replicas };
           { sh.(1) with Wire.sh_primary = sh.(0).Wire.sh_primary;
             sh_replicas = sh.(0).Wire.sh_replicas } |] }
  in
  check_true "the doctored map still validates"
    (Wire.validate_shard_map doctored = Ok ());
  let cc = Cl.of_map doctored in
  Fun.protect ~finally:(fun () -> Cl.close cc) @@ fun () ->
  let got = ok_client "nth through a stale map" (Cl.nth cc 0) in
  check_true "right record despite the stale map"
    (Matrix.equal (List.hd records) got);
  let s = Cl.stats cc in
  check_true "a refresh happened" (s.Cl.s_refreshes >= 1);
  check_int "client converged on the live version" 2 (Cl.map cc).Wire.sm_version;
  (* and the refreshed topology routes everything *)
  List.iteri
    (fun i m ->
      check_true "post-refresh answers"
        (Matrix.equal m (ok_client "nth" (Cl.nth cc i))))
    records

(* ---------- supervisor edges ---------- *)

let test_cluster_start_failures_leak_nothing () =
  with_tmp_dir @@ fun dir ->
  (match
     Cluster.start
       ~corpus:(Filename.concat dir "absent.corpus")
       ~shards:2
       ~dir:(Filename.concat dir "c1")
       ()
   with
  | Error _ -> ()
  | Ok t ->
    Cluster.shutdown t;
    Cluster.wait t;
    Alcotest.fail "a missing corpus must fail to start");
  let corpus = build_corpus dir in
  (match
     Cluster.start ~corpus ~shards:10_000 ~dir:(Filename.concat dir "c2") ()
   with
  | Error _ -> ()
  | Ok t ->
    Cluster.shutdown t;
    Cluster.wait t;
    Alcotest.fail "more shards than records must fail to start");
  check_true "negative replicas are a caller error"
    (match
       Cluster.start ~corpus ~shards:1 ~dir:(Filename.concat dir "c3")
         ~replicas:(-1) ()
     with
    | exception Invalid_argument _ -> true
    | Error _ | Ok _ -> false)

(* ---------- membership control plane: wire codec ---------- *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let test_membership_wire_roundtrip () =
  with_tmp_dir @@ fun dir ->
  let _, _, map = split_fixture dir ~shards:3 in
  let a1 = Wire.Unix_sock "/run/node-1.sock" in
  let a2 = Wire.Tcp ("node-2.local", 7711) in
  let req r =
    let id, dl, r' =
      Wire.decode_request (Wire.encode_request ~id:9 ~deadline_ms:250 r)
    in
    check_int "request id survives" 9 id;
    check_int "request deadline survives" 250 dl;
    check_true "request round-trips" (r = r')
  in
  List.iter req
    [ Wire.Join { jn_addr = a1; jn_ready = false; jn_checksum = 0L };
      Wire.Join { jn_addr = a2; jn_ready = true; jn_checksum = 0xDEADBEEFL };
      Wire.Leave a1;
      Wire.Heartbeat { hb_addr = a2; hb_version = 41; hb_checksum = 7L };
      Wire.Reshard (Wire.Split 2);
      Wire.Reshard (Wire.Merge 0);
      Wire.Handoff_done
        { hd_addr = a1; hd_lo = 3; hd_hi = 9; hd_key = [| 1; 2; 1 |];
          hd_checksum = 99L };
      Wire.Cluster_status ];
  let out o =
    let id, o' = Wire.decode_outcome (Wire.encode_outcome ~id:4 o) in
    check_int "outcome id survives" 4 id;
    check_true "outcome round-trips" (o = o')
  in
  let members =
    [ { Wire.mi_addr = a1; mi_shard = -1; mi_state = Wire.Joining;
        mi_in_map = false; mi_primary = false; mi_checksum = 0L;
        mi_beat_age = 0.25 };
      { Wire.mi_addr = a2; mi_shard = 2; mi_state = Wire.Ready;
        mi_in_map = true; mi_primary = true; mi_checksum = 5L;
        mi_beat_age = 1.5 } ]
  in
  List.iter out
    [ Wire.Reply
        (Wire.R_joined
           { jr_shard = 1; jr_lo = 4; jr_hi = 8; jr_donor = a2;
             jr_checksum = 3L; jr_version = 9; jr_map = Some map });
      Wire.Reply
        (Wire.R_joined
           { jr_shard = 0; jr_lo = 0; jr_hi = 4; jr_donor = a1;
             jr_checksum = 0L; jr_version = 1; jr_map = None });
      Wire.Reply
        (Wire.R_heartbeat
           { rh_version = 12; rh_known = true;
             rh_cmd =
               Some
                 (Wire.Cmd_acquire
                    { aq_lo = 4; aq_hi = 8; aq_donor = a1; aq_map = Some map })
           });
      Wire.Reply
        (Wire.R_heartbeat
           { rh_version = 12; rh_known = true;
             rh_cmd =
               Some
                 (Wire.Cmd_acquire
                    { aq_lo = 0; aq_hi = 2; aq_donor = a2; aq_map = None }) });
      Wire.Reply (Wire.R_heartbeat { rh_version = 0; rh_known = false; rh_cmd = None });
      Wire.Reply
        (Wire.R_status { cs_version = 5; cs_published = true; cs_members = members });
      Wire.Reply
        (Wire.R_status { cs_version = 0; cs_published = false; cs_members = [] });
      Wire.Reply (Wire.R_slice { sl_version = 17; sl_lo = 4; sl_hi = 9 });
      Wire.Reply (Wire.R_accepted "split of shard 2 started") ]

(* ---------- sweeping a crashed node's leftovers ---------- *)

let test_clean_dir_sweeps_crash_leftovers () =
  with_tmp_dir @@ fun dir ->
  let ndir = Filename.concat dir "node" in
  ok_server "sweep creates a missing dir" (Ms.clean_dir ndir);
  check_true "dir exists afterwards" (Sys.is_directory ndir);
  (* a socket path left behind by a crashed server: bound, nobody home *)
  let stale = Filename.concat ndir "crashed.sock" in
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX stale);
  Unix.close fd;
  (* an interrupted atomic publication *)
  let tmp = Filename.concat ndir "piece.0-4.corpus.tmp" in
  write_file tmp (Bytes.of_string "half-written");
  (* a finished piece must survive the sweep *)
  let piece = Ms.piece_path ndir 0 4 in
  write_file piece (Bytes.of_string "data");
  ok_server "sweep over leftovers" (Ms.clean_dir ndir);
  check_true "stale socket removed" (not (Sys.file_exists stale));
  check_true "tmp leftover removed" (not (Sys.file_exists tmp));
  check_true "piece file kept" (Sys.file_exists piece);
  (* a socket a live server answers on is an error, never a delete *)
  let live = Filename.concat ndir "live.sock" in
  let srv =
    ok_server "live server"
      (Server.start (Server.default_config (Wire.Unix_sock live)))
  in
  Fun.protect
    ~finally:(fun () ->
      Server.shutdown srv;
      Server.wait srv)
  @@ fun () ->
  (match Ms.clean_dir ndir with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "sweeping over a live socket must refuse");
  check_true "live socket untouched" (Sys.file_exists live)

(* ---------- load errors name the file and the field ---------- *)

let test_map_load_errors_name_path_and_field () =
  with_tmp_dir @@ fun dir ->
  let _, _, map = split_fixture dir ~shards:3 in
  let path = Filename.concat dir "named.umrsm" in
  Shard_map.save ~path map;
  let original = read_file path in
  let flip b i =
    let c = Bytes.copy b in
    Bytes.set c i (Char.chr (Char.code (Bytes.get c i) lxor 0xFF));
    c
  in
  let expect field bytes =
    write_file path bytes;
    match Shard_map.load ~path with
    | Ok _ -> Alcotest.failf "%s corruption went undetected" field
    | Error m ->
      check_true (field ^ ": error names the file") (contains m path);
      check_true
        (field ^ ": error names the offending field")
        (contains m ("shard map " ^ field))
  in
  expect "header" (Bytes.sub original 0 10);
  expect "magic" (flip original 0);
  expect "schema" (flip original 8);
  expect "payload length" (Bytes.sub original 0 (Bytes.length original - 3));
  expect "checksum" (flip original (Bytes.length original - 1))

(* ---------- refresh stampede: N stale verdicts, one fetch ---------- *)

let test_refresh_stampede_fetches_once () =
  with_tmp_dir @@ fun dir ->
  with_cluster ~shards:2 ~map_version:2 dir @@ fun corpus cl ->
  let _, records = Corpus.load ~path:corpus in
  let recs = Array.of_list records in
  let live = Cluster.map cl in
  let sh = live.Wire.sm_shards in
  (* every thread routes through the doctored v1 map, lands on the
     wrong node, and draws a stale verdict at the same moment *)
  let doctored =
    { live with
      Wire.sm_version = 1;
      sm_shards =
        [| { sh.(0) with Wire.sh_primary = sh.(1).Wire.sh_primary;
             sh_replicas = sh.(1).Wire.sh_replicas };
           { sh.(1) with Wire.sh_primary = sh.(0).Wire.sh_primary;
             sh_replicas = sh.(0).Wire.sh_replicas } |] }
  in
  let cc = Cl.of_map doctored in
  Fun.protect ~finally:(fun () -> Cl.close cc) @@ fun () ->
  let threads = 8 in
  let errors = Array.make threads None in
  let ths =
    Array.init threads (fun k ->
        Thread.create
          (fun () ->
            let idx = k mod Array.length recs in
            match Cl.nth cc idx with
            | Ok m ->
              if not (Matrix.equal m recs.(idx)) then
                errors.(k) <- Some "wrong record"
            | Error e -> errors.(k) <- Some (C.error_to_string e))
          ())
  in
  Array.iter Thread.join ths;
  Array.iteri
    (fun k -> function
      | None -> ()
      | Some e -> Alcotest.failf "stampede thread %d: %s" k e)
    errors;
  let s = Cl.stats cc in
  check_int "the stampede collapsed to a single refresh" 1 s.Cl.s_refreshes;
  check_int "client converged on the live version" 2 (Cl.map cc).Wire.sm_version

(* ---------- multi-process membership, in-process edition ----------

   The bench drives real OS processes; these tests drive the same
   coordinator + node agents as threads, where assertions can reach
   internal counters. *)

let await ?(timeout = 30.0) ?(dump = fun () -> "") what cond =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec go () =
    if cond () then ()
    else if Unix.gettimeofday () > deadline then
      Alcotest.failf "timed out waiting for %s%s" what (dump ())
    else begin
      Thread.delay 0.02;
      go ()
    end
  in
  go ()

let addr_in_map addr sm =
  Array.exists
    (fun sh -> sh.Wire.sh_primary = addr || List.mem addr sh.Wire.sh_replicas)
    sm.Wire.sm_shards

let members_in_map sm =
  Array.fold_left
    (fun acc sh -> acc + 1 + List.length sh.Wire.sh_replicas)
    0 sm.Wire.sm_shards

let test_membership_join_failover_reshard_catchup () =
  with_tmp_dir @@ fun dir ->
  let corpus = Filename.concat dir "wide.corpus" in
  ignore (Umrs_store.Builder.build ~p:2 ~q:4 ~d:3 ~out:corpus ());
  (match Q.build ~corpus () with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "index build: %s" (Q.error_to_string e));
  let _, records = Corpus.load ~path:corpus in
  let recs = Array.of_list records in
  let n = Array.length recs in
  check_true "corpus wide enough to split" (n >= 8);
  let co_addr = Wire.Unix_sock (Filename.concat dir "co.sock") in
  let co_cfg =
    { (Co.default_config ~dir:(Filename.concat dir "co") ~corpus
         ~listen:co_addr)
      with Co.heartbeat = 0.05; miss_limit = 4 }
  in
  let co = ok_server "coordinator" (Co.start co_cfg) in
  let nodes = Hashtbl.create 8 in
  let keys = Hashtbl.create 8 in
  let stop_all () =
    Hashtbl.iter (fun _ m -> Ms.stop m) nodes;
    Hashtbl.iter (fun _ m -> Ms.wait m) nodes;
    Hashtbl.reset nodes;
    Co.shutdown co;
    Co.wait co
  in
  Fun.protect ~finally:stop_all @@ fun () ->
  let spawn k =
    let ndir = Filename.concat dir (Printf.sprintf "n%d" k) in
    let cfg =
      { (Ms.default_config ~coordinator:co_addr ~dir:ndir
           ~listen:(Wire.Unix_sock (Filename.concat ndir "s.sock")))
        with Ms.heartbeat = 0.05 }
    in
    let m = ok_server "node start" (Ms.start cfg) in
    Hashtbl.replace nodes (Ms.self_addr m) m;
    Hashtbl.replace keys (Ms.self_addr m) k;
    m
  in
  ignore (spawn 0);
  ignore (spawn 1);
  ignore (spawn 2);
  await "all three members in the published map" (fun () ->
      match Co.published co with
      | Some sm -> members_in_map sm = 3
      | None -> false);
  let cc = ok_client "bootstrap from the coordinator" (Cl.fetch co_addr) in
  Fun.protect ~finally:(fun () -> Cl.close cc) @@ fun () ->
  let op = ok_client "operator connect" (C.connect ~retries:5 co_addr) in
  Fun.protect ~finally:(fun () -> C.close op) @@ fun () ->
  let check_all_reads tag =
    Array.iteri
      (fun i m ->
        check_true
          (tag ^ ": answers byte-identical")
          (Matrix.equal m (ok_client tag (Cl.nth cc i))))
      recs
  in
  (* mi_checksum is the checksum last *heartbeated*, so right after a
     flip a co-owner can lag a beat behind - await convergence *)
  let assert_checksums_agree tag =
    let canon lo hi =
      let acc = ref Corpus.fnv64_seed in
      for i = lo to hi - 1 do
        acc := Corpus.fnv64 !acc (Corpus.Record.encode ~p:2 ~q:4 ~d:3 recs.(i))
      done;
      !acc
    in
    let dump () =
      let ranges =
        match Co.published co with
        | None -> ""
        | Some sm ->
          Array.to_list sm.Wire.sm_shards
          |> List.mapi (fun k sh ->
                 Printf.sprintf "\n  shard %d [%d,%d) canonical=%Lx" k
                   sh.Wire.sh_lo sh.Wire.sh_hi
                   (canon sh.Wire.sh_lo sh.Wire.sh_hi))
          |> String.concat ""
      in
      let local =
        Hashtbl.fold
          (fun addr m acc ->
            Printf.sprintf "%s\n  local %s range=%s ck=%Lx catchups=%d err=%s"
              acc
              (Wire.addr_to_string addr)
              (match Ms.range m with
              | Some (lo, hi) -> Printf.sprintf "[%d,%d)" lo hi
              | None -> "-")
              (Ms.checksum m) (Ms.catchups m)
              (match Ms.last_error m with Some e -> e | None -> "-"))
          nodes ""
      in
      match C.cluster_status op with
      | Error e -> ": status: " ^ C.error_to_string e
      | Ok (v, published, members) ->
        List.fold_left
          (fun acc mi ->
            Printf.sprintf "%s\n  %s shard=%d in_map=%b ck=%Lx state=%s" acc
              (Wire.addr_to_string mi.Wire.mi_addr)
              mi.Wire.mi_shard mi.Wire.mi_in_map mi.Wire.mi_checksum
              (match mi.Wire.mi_state with
              | Wire.Joining -> "joining"
              | Wire.Ready -> "ready"
              | Wire.Dead -> "dead"))
          (Printf.sprintf ": v=%d published=%b%s%s" v published ranges local)
          members
    in
    await ~dump (tag ^ ": co-owners hold byte-identical pieces") (fun () ->
        match C.cluster_status op with
        | Error _ -> false
        | Ok (_, published, members) ->
          let by_shard = Hashtbl.create 4 in
          published
          && List.for_all
               (fun mi ->
                 (not mi.Wire.mi_in_map)
                 ||
                 match Hashtbl.find_opt by_shard mi.Wire.mi_shard with
                 | None ->
                   Hashtbl.add by_shard mi.Wire.mi_shard mi.Wire.mi_checksum;
                   true
                 | Some c -> c = mi.Wire.mi_checksum)
               members)
  in
  check_all_reads "after join";
  assert_checksums_agree "after join";
  (* kill the primary of the double-staffed shard, silently: the
     detector must declare it dead, promote its replica, republish *)
  let sm0 = match Co.published co with Some sm -> sm | None -> assert false in
  let victim_sh =
    match
      Array.find_opt (fun sh -> sh.Wire.sh_replicas <> []) sm0.Wire.sm_shards
    with
    | Some sh -> sh
    | None -> Alcotest.fail "expected a shard with a replica"
  in
  let victim_addr = victim_sh.Wire.sh_primary in
  let victim = Hashtbl.find nodes victim_addr in
  Ms.stop ~leave:false victim;
  Ms.wait victim;
  Hashtbl.remove nodes victim_addr;
  await "the silent victim declared dead" (fun () -> Co.deaths co >= 1);
  await "its replica promoted" (fun () -> Co.promotions co >= 1);
  await "map republished without the victim" (fun () ->
      match Co.published co with
      | Some sm -> not (addr_in_map victim_addr sm)
      | None -> false);
  check_all_reads "after failover";
  (* the victim returns in the same dir: catch-up decides by checksum,
     so at most the other shard's piece is streamed, and the node
     re-enters the published map *)
  let back = spawn (Hashtbl.find keys victim_addr) in
  await "the returning node re-entered the map" (fun () ->
      match Co.published co with
      | Some sm -> addr_in_map (Ms.self_addr back) sm && members_in_map sm = 3
      | None -> false);
  check_true "catch-up streamed at most one piece" (Ms.catchups back <= 1);
  check_all_reads "after catch-up";
  assert_checksums_agree "after catch-up";
  (* online resharding under continuous verified reads: a background
     reader must never observe wrong bytes - transient errors are
     retried, silence about wrong data is the one unforgivable sin *)
  let stop_reading = Atomic.make false in
  let rmu = Mutex.create () in
  let reader_errors = ref [] in
  let record_failure msg =
    Mutex.lock rmu;
    reader_errors := msg :: !reader_errors;
    Mutex.unlock rmu
  in
  let reader =
    Thread.create
      (fun () ->
        let i = ref 0 in
        while not (Atomic.get stop_reading) do
          let idx = !i mod n in
          incr i;
          let rec attempt tries =
            match Cl.nth cc idx with
            | Ok m ->
              if not (Matrix.equal m recs.(idx)) then
                record_failure (Printf.sprintf "nth %d: wrong record" idx)
            | Error e ->
              if tries >= 100 then
                record_failure
                  (Printf.sprintf "nth %d: %s" idx (C.error_to_string e))
              else begin
                Thread.delay 0.01;
                attempt (tries + 1)
              end
          in
          attempt 0
        done)
      ()
  in
  let catchups_sum () =
    Hashtbl.fold (fun _ m acc -> acc + Ms.catchups m) nodes 0
  in
  let before_split = catchups_sum () in
  let vbefore = Co.version co in
  ignore (ok_client "split" (C.reshard op (Wire.Split 0)));
  await "split flipped and republished" (fun () ->
      match Co.published co with
      | Some sm ->
        Array.length sm.Wire.sm_shards = 3 && sm.Wire.sm_version > vbefore
      | None -> false);
  check_true "the split streamed a new piece" (catchups_sum () > before_split);
  let vsplit =
    match Co.published co with Some sm -> sm.Wire.sm_version | None -> 0
  in
  ignore (ok_client "merge" (C.reshard op (Wire.Merge 0)));
  await "merge folded back to two shards" (fun () ->
      match Co.published co with
      | Some sm ->
        Array.length sm.Wire.sm_shards = 2 && sm.Wire.sm_version > vsplit
      | None -> false);
  await "the orphaned owner re-joined" (fun () ->
      match Co.published co with
      | Some sm -> members_in_map sm = 3
      | None -> false);
  Atomic.set stop_reading true;
  Thread.join reader;
  (match !reader_errors with
  | [] -> ()
  | e :: _ ->
    Alcotest.failf "reader under resharding: %s (%d failures)" e
      (List.length !reader_errors));
  check_all_reads "after resharding";
  assert_checksums_agree "after resharding"

(* ---------- heartbeat loss: false positive, then healing ---------- *)

let test_heartbeat_loss_false_positive_recovery () =
  with_tmp_dir @@ fun dir ->
  let corpus = build_corpus dir in
  let co_addr = Wire.Unix_sock (Filename.concat dir "co.sock") in
  let co_cfg =
    { (Co.default_config ~dir:(Filename.concat dir "co") ~corpus
         ~listen:co_addr)
      with Co.heartbeat = 0.05; miss_limit = 3; shards = 1 }
  in
  let co = ok_server "coordinator" (Co.start co_cfg) in
  let spawn k =
    let ndir = Filename.concat dir (Printf.sprintf "n%d" k) in
    let cfg =
      { (Ms.default_config ~coordinator:co_addr ~dir:ndir
           ~listen:(Wire.Unix_sock (Filename.concat ndir "s.sock")))
        with Ms.heartbeat = 0.05 }
    in
    ok_server "node start" (Ms.start cfg)
  in
  let n0 = spawn 0 in
  let n1 = spawn 1 in
  Fun.protect
    ~finally:(fun () ->
      Ms.stop n0;
      Ms.stop n1;
      Ms.wait n0;
      Ms.wait n1;
      Co.shutdown co;
      Co.wait co)
  @@ fun () ->
  await "primary and replica in the map" (fun () ->
      match Co.published co with
      | Some sm -> members_in_map sm = 2
      | None -> false);
  (* drop every heartbeat: two perfectly healthy nodes must be
     declared dead - the detector cannot tell loss from death *)
  let plan =
    Fault.make_plan ~label:"beat blackout" (fun p _ ->
        match p with
        | Fault.Heartbeat_loss -> Fault.Reset
        | _ -> Fault.Pass)
  in
  let r =
    Fault.with_plan plan (fun () ->
        await ~timeout:15.0 "false-positive deaths" (fun () ->
            Co.deaths co >= 2))
  in
  check_true "blackout run completed" (r.Fault.outcome = Ok ());
  check_true "heartbeat fault points fired" (r.Fault.points > 0);
  (* beats resume: rh_known = false sends both through a fresh join,
     checksums still match, so healing re-fetches nothing *)
  await "the cluster heals" (fun () ->
      match Co.published co with
      | Some sm ->
        members_in_map sm = 2
        && addr_in_map (Ms.self_addr n0) sm
        && addr_in_map (Ms.self_addr n1) sm
      | None -> false);
  let _, records = Corpus.load ~path:corpus in
  let cc = ok_client "fetch after healing" (Cl.fetch co_addr) in
  Fun.protect ~finally:(fun () -> Cl.close cc) @@ fun () ->
  List.iteri
    (fun i m ->
      check_true "reads after healing"
        (Matrix.equal m (ok_client "nth" (Cl.nth cc i))))
    records

let suite =
  [
    case "shard map round-trips the wire codec" test_map_codec_roundtrip;
    case "validation rejects broken maps" test_validate_rejects_broken_maps;
    case "routing invariants hold over a real corpus" test_routing_invariants;
    case "splitting preserves the corpus exactly" test_split_preserves_the_corpus;
    case "map file round-trips; corruption is detected"
      test_map_file_roundtrip_and_corruption;
    case "cluster answers = single node, every request shape"
      test_differential_cluster_equals_single_node;
    case "replica failover survives losing every primary"
      test_failover_survives_primary_loss;
    case "a stale shard map refreshes transparently"
      test_stale_map_refreshes_transparently;
    case "start failures unwind cleanly" test_cluster_start_failures_leak_nothing;
    case "membership control plane round-trips the wire codec"
      test_membership_wire_roundtrip;
    case "clean_dir sweeps crash leftovers, spares live state"
      test_clean_dir_sweeps_crash_leftovers;
    case "map load errors name the file and the offending field"
      test_map_load_errors_name_path_and_field;
    case "concurrent stale verdicts collapse to one refresh"
      test_refresh_stampede_fetches_once;
    case "join, failover, resharding, catch-up under live reads"
      test_membership_join_failover_reshard_catchup;
    case "heartbeat loss: false-positive failover, then healing"
      test_heartbeat_loss_false_positive_recovery;
  ]
