(* The cluster subsystem end to end: shard-map codec and routing
   invariants, corpus splitting (pieces re-concatenate to the source,
   byte for byte), the checksummed map file, and live clusters - a
   differential check that a sharded cluster answers byte-identically
   to a single server over the unsharded corpus, replica failover when
   primaries die, and transparent shard-map refresh after a stale
   verdict. *)

open Umrs_core
open Helpers
module Corpus = Umrs_store.Corpus
module Shard = Umrs_store.Shard
module Q = Umrs_store.Query
module Wire = Umrs_server.Wire
module Server = Umrs_server.Server
module C = Umrs_client
module Shard_map = Umrs_cluster.Shard_map
module Cluster = Umrs_cluster.Cluster
module Cl = Umrs_cluster.Client

let with_tmp_dir f =
  let dir = Filename.temp_file "umrs_cluster" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let rec rm path =
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm (Filename.concat path e)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path
  in
  Fun.protect ~finally:(fun () -> rm dir) (fun () -> f dir)

let ok_client what = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %s" what (C.error_to_string e)

let ok_server what = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %s" what e

let build_corpus dir =
  let corpus = Filename.concat dir "ref.corpus" in
  ignore (Umrs_store.Builder.build ~p:2 ~q:3 ~d:3 ~out:corpus ());
  (match Q.build ~corpus () with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "index build: %s" (Q.error_to_string e));
  corpus

(* A corpus split three ways plus a map over synthetic endpoints - the
   fixture for every test that needs a topology but no live servers. *)
let split_fixture dir ~shards =
  let corpus = build_corpus dir in
  let pieces =
    match Shard.split ~corpus ~shards () with
    | Ok ps -> ps
    | Error e -> Alcotest.failf "split: %s" e
  in
  let endpoints =
    Array.init (Array.length pieces) (fun k ->
        ( Wire.Unix_sock (Printf.sprintf "/run/n%dp.sock" k),
          [ Wire.Tcp (Printf.sprintf "replica-%d.local" k, 7700 + k) ] ))
  in
  let map =
    Shard_map.build ~source:(Corpus.info ~path:corpus) ~version:3 ~pieces
      ~endpoints
  in
  (corpus, pieces, map)

let with_cluster ~shards ?(replicas = 0) ?map_version dir f =
  let corpus = build_corpus dir in
  let cdir = Filename.concat dir "cluster" in
  match Cluster.start ~corpus ~shards ~dir:cdir ~replicas ?map_version () with
  | Error e -> Alcotest.failf "cluster start: %s" e
  | Ok t ->
    Fun.protect
      ~finally:(fun () ->
        Cluster.shutdown t;
        Cluster.wait t)
      (fun () -> f corpus t)

(* ---------- wire codec and stale verdicts ---------- *)

let test_map_codec_roundtrip () =
  with_tmp_dir @@ fun dir ->
  let _, _, map = split_fixture dir ~shards:3 in
  check_true "built map validates" (Wire.validate_shard_map map = Ok ());
  let map' = Wire.shard_map_of_bytes (Wire.shard_map_to_bytes map) in
  check_true "map round-trips through the codec" (map = map');
  check_true "corpus identity preserved"
    (Wire.corpus_header_of_map map' = Wire.corpus_header_of_map map);
  (* a stale-shard verdict carries a version the client can parse back *)
  (match Wire.stale_shard_reject ~version:7 with
  | Wire.Rejected msg ->
    check_true "stale verdict parses back"
      (Wire.stale_shard_version msg = Some 7)
  | _ -> Alcotest.fail "stale reject must be a Rejected verdict");
  check_true "ordinary rejections do not parse as stale"
    (Wire.stale_shard_version "no such record" = None)

let test_validate_rejects_broken_maps () =
  with_tmp_dir @@ fun dir ->
  let _, _, map = split_fixture dir ~shards:3 in
  let broken what m =
    match Wire.validate_shard_map m with
    | Error _ -> ()
    | Ok () -> Alcotest.failf "%s: accepted" what
  in
  let sh = map.Wire.sm_shards in
  broken "no shards" { map with Wire.sm_shards = [||] };
  broken "range gap"
    { map with
      Wire.sm_shards =
        [| sh.(0); { sh.(1) with Wire.sh_lo = sh.(1).Wire.sh_lo + 1 }; sh.(2) |] };
  broken "last shard stops short"
    { map with
      Wire.sm_shards =
        [| sh.(0); sh.(1); { sh.(2) with Wire.sh_hi = sh.(2).Wire.sh_hi - 1 } |] };
  broken "empty shard"
    { map with
      Wire.sm_shards =
        [| sh.(0); { sh.(1) with Wire.sh_hi = sh.(1).Wire.sh_lo } |] };
  broken "boundary keys out of order"
    { map with
      Wire.sm_shards =
        [| sh.(0); { sh.(1) with Wire.sh_key = sh.(0).Wire.sh_key }; sh.(2) |] };
  broken "boundary key arity"
    { map with
      Wire.sm_shards = [| { sh.(0) with Wire.sh_key = [| 1; 1 |] }; sh.(1); sh.(2) |] }

(* ---------- routing invariants against a real corpus ---------- *)

let test_routing_invariants () =
  with_tmp_dir @@ fun dir ->
  let corpus, _, map = split_fixture dir ~shards:3 in
  let _, records = Corpus.load ~path:corpus in
  let count = List.length records in
  let ns = Array.length map.Wire.sm_shards in
  check_int "three shards" 3 ns;
  List.iteri
    (fun i m ->
      let owner = Wire.route_index map i in
      let sh = map.Wire.sm_shards.(owner) in
      check_true "rank lies inside its owner's range"
        (sh.Wire.sh_lo <= i && i < sh.Wire.sh_hi);
      check_int "key routes to the rank's shard" owner (Wire.route_matrix map m);
      check_int "raw key agrees" owner (Wire.route_key map (Wire.matrix_key m));
      let a, b = Wire.route_prefix map (Wire.matrix_key m) in
      check_true "full-key span covers the owner" (a <= owner && owner <= b))
    records;
  check_true "rank = count is out of range"
    (match Wire.route_index map count with
    | exception Invalid_argument _ -> true
    | _ -> false);
  check_true "negative rank is out of range"
    (match Wire.route_index map (-1) with
    | exception Invalid_argument _ -> true
    | _ -> false);
  check_int "a key below every boundary routes to shard 0" 0
    (Wire.route_key map (Array.make 6 0));
  check_true "the empty prefix spans every shard"
    (Wire.route_prefix map [||] = (0, ns - 1))

(* ---------- splitting: nothing lost, nothing reordered ---------- *)

let test_split_preserves_the_corpus () =
  with_tmp_dir @@ fun dir ->
  let corpus, pieces, _ = split_fixture dir ~shards:3 in
  let _, originals = Corpus.load ~path:corpus in
  let count = List.length originals in
  let reassembled =
    Array.to_list pieces
    |> List.concat_map (fun pc -> snd (Corpus.load ~path:pc.Shard.pc_corpus))
  in
  check_int "every record present" count (List.length reassembled);
  List.iter2
    (fun a b -> check_true "records equal, in source order" (Matrix.equal a b))
    originals reassembled;
  Array.iteri
    (fun k pc ->
      let v = Corpus.verify ~path:pc.Shard.pc_corpus in
      check_true "piece is an intact corpus" (v.Corpus.v_problems = []);
      check_int "piece count matches its range" (pc.Shard.pc_hi - pc.Shard.pc_lo)
        v.Corpus.v_records_read;
      let lo, hi = Shard.bounds ~count ~shards:3 k in
      check_int "lo is the contract" lo pc.Shard.pc_lo;
      check_int "hi is the contract" hi pc.Shard.pc_hi;
      check_true "boundary key is the first record's key"
        (pc.Shard.pc_key = Shard.matrix_key (List.nth originals pc.Shard.pc_lo));
      check_true "piece has a usable index"
        (match Q.open_ ~corpus:pc.Shard.pc_corpus () with
        | Ok q ->
          Q.close q;
          true
        | Error _ -> false))
    pieces;
  check_true "more shards than records is an error, not a crash"
    (match Shard.split ~corpus ~shards:(count + 1) () with
    | Error _ -> true
    | Ok _ -> false);
  check_true "shards < 1 is a caller error"
    (match Shard.split ~corpus ~shards:0 () with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ---------- the map file ---------- *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let b = Bytes.create n in
  really_input ic b 0 n;
  close_in ic;
  b

let write_file path b =
  let oc = open_out_bin path in
  output_bytes oc b;
  close_out oc

let test_map_file_roundtrip_and_corruption () =
  with_tmp_dir @@ fun dir ->
  let _, _, map = split_fixture dir ~shards:3 in
  let path = Filename.concat dir "m.umrsm" in
  Shard_map.save ~path map;
  (match Shard_map.load ~path with
  | Ok m -> check_true "load returns what save wrote" (m = map)
  | Error e -> Alcotest.failf "load: %s" e);
  let original = read_file path in
  let flip b i =
    let c = Bytes.copy b in
    Bytes.set c i (Char.chr (Char.code (Bytes.get c i) lxor 0xFF));
    c
  in
  let corrupt what bytes =
    write_file path bytes;
    match Shard_map.load ~path with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%s went undetected" what
  in
  corrupt "a bad magic" (flip original 0);
  corrupt "an unknown schema" (flip original 8);
  corrupt "a flipped payload byte" (flip original (Bytes.length original - 1));
  corrupt "a truncated payload" (Bytes.sub original 0 (Bytes.length original - 3));
  corrupt "a file shorter than the header" (Bytes.sub original 0 10);
  (* corruption detection is non-destructive: the original still loads *)
  write_file path original;
  check_true "pristine bytes still load"
    (match Shard_map.load ~path with Ok m -> m = map | Error _ -> false)

(* ---------- live cluster: differential against a single node ---------- *)

let test_differential_cluster_equals_single_node () =
  with_tmp_dir @@ fun dir ->
  with_cluster ~shards:3 ~replicas:1 dir @@ fun corpus cl ->
  check_int "nodes running" 6 (Cluster.live_nodes cl);
  (match Shard_map.load ~path:(Cluster.map_path cl) with
  | Ok m -> check_true "persisted map matches the live one" (m = Cluster.map cl)
  | Error e -> Alcotest.failf "persisted map: %s" e);
  (* the reference: one server over the unsharded corpus *)
  let saddr = Wire.Unix_sock (Filename.concat dir "single.sock") in
  let cfg =
    { (Server.default_config saddr) with
      Server.corpus = Some corpus; workers = 2; queue_capacity = 32;
      cache_capacity = 8 }
  in
  let srv = ok_server "single start" (Server.start cfg) in
  Fun.protect
    ~finally:(fun () ->
      Server.shutdown srv;
      Server.wait srv)
  @@ fun () ->
  let sc = ok_client "single connect" (C.connect ~retries:5 saddr) in
  Fun.protect ~finally:(fun () -> C.close sc) @@ fun () ->
  (* bootstrap the routing client from a replica, not a primary *)
  let cc = ok_client "fetch map" (Cl.fetch (Cluster.addr cl ~shard:1 ~role:1)) in
  Fun.protect ~finally:(fun () -> Cl.close cc) @@ fun () ->
  ok_client "cluster ping" (Cl.ping cc);
  let h = ok_client "cluster info" (Cl.corpus_info cc) in
  check_true "cluster header = single header"
    (h = ok_client "single info" (C.corpus_info sc));
  let n = h.Corpus.count in
  check_true "corpus non-trivial" (n >= 3);
  for i = 0 to n - 1 do
    let m = ok_client "single nth" (C.nth sc i) in
    check_true "nth equal" (Matrix.equal m (ok_client "cluster nth" (Cl.nth cc i)));
    check_true "mem equal"
      (ok_client "cluster mem" (Cl.mem cc m) = ok_client "single mem" (C.mem sc m));
    check_int "rank equal"
      (ok_client "single rank" (C.rank sc m))
      (ok_client "cluster rank" (Cl.rank cc m));
    check_true "cgraph equal"
      (ok_client "cluster cgraph" (Cl.cgraph cc i)
      = ok_client "single cgraph" (C.cgraph sc i))
  done;
  (* prefix ranges exercise every span shape: all shards, one shard,
     shard boundaries, and prefixes with no matches *)
  List.iter
    (fun prefix ->
      check_true "range_prefix equal"
        (ok_client "cluster range" (Cl.range_prefix cc prefix)
        = ok_client "single range" (C.range_prefix sc prefix)))
    [ [||]; [| 1 |]; [| 2 |]; [| 3 |]; [| 1; 2 |]; [| 1; 1; 2 |];
      [| 2; 3; 1 |]; [| 1; 2; 1; 1; 1; 2 |] ];
  let absent = Matrix.create_relaxed [| [| 3; 3; 3 |]; [| 3; 3; 3 |] |] in
  check_true "absent mem equal"
    (ok_client "cluster mem" (Cl.mem cc absent)
    = ok_client "single mem" (C.mem sc absent));
  check_int "absent rank equal"
    (ok_client "single rank" (C.rank sc absent))
    (ok_client "cluster rank" (Cl.rank cc absent));
  (* one batch of every shape: buckets per shard, reassembles in order *)
  let m0 = ok_client "m0" (C.nth sc 0) in
  let reqs =
    [ Wire.Ping 77; Wire.Nth 0; Wire.Range_prefix [||]; Wire.Mem m0;
      Wire.Rank m0; Wire.Nth (n - 1); Wire.Range_prefix [| 1 |];
      Wire.Nth (n / 2) ]
  in
  let cluster_rs = Cl.batch cc reqs in
  let single_rs = C.call_pipelined sc reqs in
  check_int "batch answered in full" (List.length reqs) (List.length cluster_rs);
  List.iter2
    (fun a b ->
      check_true "batch slot equal"
        (ok_client "cluster slot" a = ok_client "single slot" b))
    cluster_rs single_rs;
  (* out of range comes back Refused, exactly as a single server answers *)
  (match Cl.nth cc (n + 5) with
  | Error (C.Refused _) -> ()
  | _ -> Alcotest.fail "out-of-range nth must be Refused");
  match Cl.nth cc (-1) with
  | Error (C.Refused _) -> ()
  | _ -> Alcotest.fail "negative nth must be Refused"

(* ---------- failover: killing primaries is invisible ---------- *)

let test_failover_survives_primary_loss () =
  with_tmp_dir @@ fun dir ->
  with_cluster ~shards:2 ~replicas:1 dir @@ fun corpus cl ->
  let _, records = Corpus.load ~path:corpus in
  let n = List.length records in
  let cc = ok_client "fetch" (Cl.fetch (Cluster.addr cl ~shard:0 ~role:0)) in
  Fun.protect ~finally:(fun () -> Cl.close cc) @@ fun () ->
  (* warm every group through its primary *)
  for i = 0 to n - 1 do
    ignore (ok_client "warm nth" (Cl.nth cc i))
  done;
  check_int "all nodes up" 4 (Cluster.live_nodes cl);
  (* kill every primary: the replicas must absorb the whole keyspace *)
  Cluster.kill_primary cl 0;
  Cluster.kill_primary cl 1;
  check_int "only replicas left" 2 (Cluster.live_nodes cl);
  List.iteri
    (fun i m ->
      check_true "answers unchanged after the kill"
        (Matrix.equal m (ok_client "nth after kill" (Cl.nth cc i))))
    records;
  check_true "ranges still merge"
    (match Cl.range_prefix cc [||] with Ok (0, h) -> h = n | _ -> false);
  ok_client "ping after kill" (Cl.ping cc);
  let s = Cl.stats cc in
  check_true "failovers recorded" (s.Cl.s_failovers >= 2);
  check_int "graceful kills crash no workers" 0 (Cluster.worker_crashes cl);
  (* kill is idempotent *)
  Cluster.kill_primary cl 0;
  check_int "idempotent kill" 2 (Cluster.live_nodes cl)

(* ---------- stale shard map: refresh, re-route, answer ---------- *)

let test_stale_map_refreshes_transparently () =
  with_tmp_dir @@ fun dir ->
  with_cluster ~shards:2 ~map_version:2 dir @@ fun corpus cl ->
  let _, records = Corpus.load ~path:corpus in
  (* a client holding version 1 with the endpoint groups swapped: every
     routed request lands on the wrong node, whose stale verdict names
     version 2; the client must refresh once and answer correctly *)
  let live = Cluster.map cl in
  let sh = live.Wire.sm_shards in
  let doctored =
    { live with
      Wire.sm_version = 1;
      sm_shards =
        [| { sh.(0) with Wire.sh_primary = sh.(1).Wire.sh_primary;
             sh_replicas = sh.(1).Wire.sh_replicas };
           { sh.(1) with Wire.sh_primary = sh.(0).Wire.sh_primary;
             sh_replicas = sh.(0).Wire.sh_replicas } |] }
  in
  check_true "the doctored map still validates"
    (Wire.validate_shard_map doctored = Ok ());
  let cc = Cl.of_map doctored in
  Fun.protect ~finally:(fun () -> Cl.close cc) @@ fun () ->
  let got = ok_client "nth through a stale map" (Cl.nth cc 0) in
  check_true "right record despite the stale map"
    (Matrix.equal (List.hd records) got);
  let s = Cl.stats cc in
  check_true "a refresh happened" (s.Cl.s_refreshes >= 1);
  check_int "client converged on the live version" 2 (Cl.map cc).Wire.sm_version;
  (* and the refreshed topology routes everything *)
  List.iteri
    (fun i m ->
      check_true "post-refresh answers"
        (Matrix.equal m (ok_client "nth" (Cl.nth cc i))))
    records

(* ---------- supervisor edges ---------- *)

let test_cluster_start_failures_leak_nothing () =
  with_tmp_dir @@ fun dir ->
  (match
     Cluster.start
       ~corpus:(Filename.concat dir "absent.corpus")
       ~shards:2
       ~dir:(Filename.concat dir "c1")
       ()
   with
  | Error _ -> ()
  | Ok t ->
    Cluster.shutdown t;
    Cluster.wait t;
    Alcotest.fail "a missing corpus must fail to start");
  let corpus = build_corpus dir in
  (match
     Cluster.start ~corpus ~shards:10_000 ~dir:(Filename.concat dir "c2") ()
   with
  | Error _ -> ()
  | Ok t ->
    Cluster.shutdown t;
    Cluster.wait t;
    Alcotest.fail "more shards than records must fail to start");
  check_true "negative replicas are a caller error"
    (match
       Cluster.start ~corpus ~shards:1 ~dir:(Filename.concat dir "c3")
         ~replicas:(-1) ()
     with
    | exception Invalid_argument _ -> true
    | Error _ | Ok _ -> false)

let suite =
  [
    case "shard map round-trips the wire codec" test_map_codec_roundtrip;
    case "validation rejects broken maps" test_validate_rejects_broken_maps;
    case "routing invariants hold over a real corpus" test_routing_invariants;
    case "splitting preserves the corpus exactly" test_split_preserves_the_corpus;
    case "map file round-trips; corruption is detected"
      test_map_file_roundtrip_and_corruption;
    case "cluster answers = single node, every request shape"
      test_differential_cluster_equals_single_node;
    case "replica failover survives losing every primary"
      test_failover_survives_primary_loss;
    case "a stale shard map refreshes transparently"
      test_stale_map_refreshes_transparently;
    case "start failures unwind cleanly" test_cluster_start_failures_leak_nothing;
  ]
