let () =
  Alcotest.run "umrs"
    [
      ("perm", Test_perm.suite);
      ("graph", Test_graph.suite);
      ("bfs", Test_bfs.suite);
      ("generators", Test_generators.suite);
      ("props", Test_props.suite);
      ("bitcode", Test_bitcode.suite);
      ("routing", Test_routing.suite);
      ("interval", Test_interval.suite);
      ("specialized", Test_specialized.suite);
      ("landmark+spanner", Test_landmark_spanner.suite);
      ("simulator", Test_simulator.suite);
      ("bignat", Test_bignat.suite);
      ("matrix", Test_matrix.suite);
      ("canonical", Test_canonical.suite);
      ("enumerate+count", Test_enumerate_count.suite);
      ("enumerate-parallel", Test_enumerate_parallel.suite);
      ("cgraph+verify", Test_cgraph_verify.suite);
      ("paper-results", Test_paper_results.suite);
      ("weighted", Test_weighted.suite);
      ("hierarchical", Test_hierarchical.suite);
      ("orbit+failures", Test_orbit_failures.suite);
      ("globe+headers", Test_globe_headers.suite);
      ("torus+optimizer", Test_torus_optimizer.suite);
      ("product+iso+hotpotato", Test_product_iso_hotpotato.suite);
      ("compression+parallel", Test_compression_parallel.suite);
      ("cover+treecover", Test_cover_treecover.suite);
      ("deadlock", Test_deadlock.suite);
      ("io+decode", Test_io_decode.suite);
      ("stats", Test_stats.suite);
      ("collective", Test_collective.suite);
      ("boundaries", Test_boundaries.suite);
      ("store", Test_store.suite);
      ("query", Test_query.suite);
      ("fuzz", Test_fuzz.suite);
    ]
