open Umrs_bitcode
open Helpers

let small_nat = QCheck.make ~print:string_of_int QCheck.Gen.(map abs int)
let pos_nat =
  QCheck.make ~print:string_of_int QCheck.Gen.(map (fun x -> 1 + (abs x mod 1000000)) int)

let test_bitbuf_basics () =
  let b = Bitbuf.create () in
  check_int "empty" 0 (Bitbuf.length b);
  Bitbuf.add_bit b true;
  Bitbuf.add_bit b false;
  Bitbuf.add_bit b true;
  check_int "len 3" 3 (Bitbuf.length b);
  check_true "array" (Bitbuf.to_bool_array b = [| true; false; true |]);
  let r = Bitbuf.reader b in
  check_true "read 1" (Bitbuf.read_bit r);
  check_true "read 0" (not (Bitbuf.read_bit r));
  check_int "remaining" 1 (Bitbuf.remaining r)

let test_bitbuf_growth () =
  let b = Bitbuf.create () in
  for i = 0 to 999 do
    Bitbuf.add_bit b (i mod 3 = 0)
  done;
  check_int "len 1000" 1000 (Bitbuf.length b);
  let a = Bitbuf.to_bool_array b in
  check_true "content preserved"
    (Array.for_all Fun.id (Array.mapi (fun i x -> x = (i mod 3 = 0)) a))

let test_add_bits_msb_first () =
  let b = Bitbuf.create () in
  Bitbuf.add_bits b 5 ~width:3;
  check_true "101" (Bitbuf.to_bool_array b = [| true; false; true |]);
  let r = Bitbuf.reader b in
  check_int "roundtrip" 5 (Bitbuf.read_bits r ~width:3)

let test_append_concat () =
  let b1 = Bitbuf.of_bool_array [| true; true |] in
  let b2 = Bitbuf.of_bool_array [| false |] in
  let c = Bitbuf.concat [ b1; b2; b1 ] in
  check_true "concat" (Bitbuf.to_bool_array c = [| true; true; false; true; true |])

let test_reader_past_end () =
  let b = Bitbuf.create () in
  let r = Bitbuf.reader b in
  check_true "raises"
    (try ignore (Bitbuf.read_bit r); false with Invalid_argument _ -> true)

let test_reader_overread_multibit () =
  (* read_bits must not read past the end even when a prefix of the
     requested width is available. *)
  let b = Bitbuf.create () in
  Bitbuf.add_bits b 5 ~width:3;
  let r = Bitbuf.reader b in
  ignore (Bitbuf.read_bits r ~width:2);
  check_int "one bit left" 1 (Bitbuf.remaining r);
  check_true "read_bits past end raises"
    (try ignore (Bitbuf.read_bits r ~width:2); false
     with Invalid_argument _ -> true);
  (* Reader state survives the failed read: the remaining bit is
     still readable. *)
  check_true "remaining bit intact" (Bitbuf.read_bit r);
  check_int "now empty" 0 (Bitbuf.remaining r)

let test_bytes_roundtrip () =
  let b = Bitbuf.create () in
  Bitbuf.add_bits b 0b1011 ~width:4;
  Bitbuf.add_bits b 0b110100101 ~width:9;
  let packed = Bitbuf.to_bytes b in
  check_int "packed size" 2 (Bytes.length packed);
  let b' = Bitbuf.of_bytes packed ~len:(Bitbuf.length b) in
  check_true "bytes roundtrip"
    (Bitbuf.to_bool_array b = Bitbuf.to_bool_array b');
  check_true "of_bytes rejects oversized len"
    (try ignore (Bitbuf.of_bytes packed ~len:17); false
     with Invalid_argument _ -> true);
  (* Empty buffer edge case. *)
  let e = Bitbuf.create () in
  check_int "empty packs to 0 bytes" 0 (Bytes.length (Bitbuf.to_bytes e));
  check_int "empty unpacks" 0
    (Bitbuf.length (Bitbuf.of_bytes Bytes.empty ~len:0))

let test_codes_explicit () =
  check_int "bits_needed 0" 0 (Codes.bits_needed 0);
  check_int "bits_needed 1" 1 (Codes.bits_needed 1);
  check_int "bits_needed 255" 8 (Codes.bits_needed 255);
  check_int "ceil_log2 1" 0 (Codes.ceil_log2 1);
  check_int "ceil_log2 9" 4 (Codes.ceil_log2 9);
  check_int "gamma length 1" 1 (Codes.gamma_length 1);
  check_int "gamma length 4" 5 (Codes.gamma_length 4);
  check_int "unary length" 6 (Codes.unary_length 5)

let roundtrip write read lengthf x =
  let b = Bitbuf.create () in
  write b x;
  let r = Bitbuf.reader b in
  let y = read r in
  y = x && Bitbuf.length b = lengthf x && Bitbuf.remaining r = 0

let test_rank_binomial () =
  check_int "C(5,2)" 10 (Rank.binomial 5 2);
  check_int "C(10,0)" 1 (Rank.binomial 10 0);
  check_int "C(10,10)" 1 (Rank.binomial 10 10);
  check_int "C(52,5)" 2598960 (Rank.binomial 52 5);
  Alcotest.(check (float 1e-6))
    "log2 C(5,2)"
    (Float.log (10.0) /. Float.log 2.0)
    (Rank.log2_binomial 5 2);
  Alcotest.(check (float 1e-6))
    "log2 10!"
    (Float.log 3628800.0 /. Float.log 2.0)
    (Rank.log2_factorial 10)

let test_combination_rank_order () =
  (* first and last combinations *)
  check_int "rank of prefix" 0 (Rank.rank_combination ~n:6 [| 0; 1; 2 |]);
  check_int "rank of suffix"
    (Rank.binomial 6 3 - 1)
    (Rank.rank_combination ~n:6 [| 3; 4; 5 |]);
  check_true "unrank 0" (Rank.unrank_combination ~n:6 ~k:3 0 = [| 0; 1; 2 |])

let test_combination_exhaustive () =
  (* all C(7,3) ranks round-trip and are distinct *)
  let n = 7 and k = 3 in
  let total = Rank.binomial n k in
  for r = 0 to total - 1 do
    let c = Rank.unrank_combination ~n ~k r in
    check_int "roundtrip" r (Rank.rank_combination ~n c)
  done

let test_permutation_codec () =
  let st = rng () in
  for n = 1 to 8 do
    let p = Umrs_graph.Perm.random st n in
    let b = Bitbuf.create () in
    Rank.write_permutation b p;
    check_int "length" (Rank.permutation_length n) (Bitbuf.length b);
    let r = Bitbuf.reader b in
    check_true "roundtrip" (Rank.read_permutation r ~n = p)
  done

let combination_arb =
  let gen =
    QCheck.Gen.map
      (fun (seed, n, k) ->
        let n = 1 + (abs n mod 16) in
        let k = abs k mod (n + 1) in
        let st = Random.State.make [| seed |] in
        let p = Umrs_graph.Perm.random st n in
        let c = Array.sub p 0 k in
        Array.sort compare c;
        (n, c))
      QCheck.Gen.(triple int small_nat small_nat)
  in
  QCheck.make
    ~print:(fun (n, c) ->
      Printf.sprintf "n=%d [%s]" n
        (String.concat ";" (List.map string_of_int (Array.to_list c))))
    gen

let suite =
  [
    case "bitbuf basics" test_bitbuf_basics;
    case "bitbuf growth" test_bitbuf_growth;
    case "add_bits is MSB first" test_add_bits_msb_first;
    case "append/concat" test_append_concat;
    case "reader past end" test_reader_past_end;
    case "reader over-read keeps state" test_reader_overread_multibit;
    case "bytes roundtrip" test_bytes_roundtrip;
    case "codes explicit values" test_codes_explicit;
    case "binomial" test_rank_binomial;
    case "combination rank order" test_combination_rank_order;
    case "combination exhaustive C(7,3)" test_combination_exhaustive;
    case "permutation codec" test_permutation_codec;
    prop "unary roundtrip" small_nat (fun x ->
        let x = x mod 2000 in
        roundtrip Codes.write_unary Codes.read_unary Codes.unary_length x);
    prop "gamma roundtrip" pos_nat (fun x ->
        roundtrip Codes.write_gamma Codes.read_gamma Codes.gamma_length x);
    prop "delta roundtrip" pos_nat (fun x ->
        roundtrip Codes.write_delta Codes.read_delta Codes.delta_length x);
    prop "fibonacci roundtrip" pos_nat (fun x ->
        roundtrip Codes.write_fibonacci Codes.read_fibonacci
          Codes.fibonacci_length x);
    prop "fibonacci code ends in 11" pos_nat (fun x ->
        let b = Bitbuf.create () in
        Codes.write_fibonacci b x;
        let a = Bitbuf.to_bool_array b in
        let n = Array.length a in
        n >= 2 && a.(n - 1) && a.(n - 2));
    prop "rice roundtrip" pos_nat (fun x ->
        let k = x mod 8 in
        roundtrip
          (fun b x -> Codes.write_rice b x ~k)
          (fun r -> Codes.read_rice r ~k)
          (fun x -> Codes.rice_length x ~k)
          (x mod 4096));
    prop "bounded roundtrip" pos_nat (fun bound ->
        let bound = 1 + (bound mod 100000) in
        let x = bound - 1 in
        let b = Bitbuf.create () in
        Codes.write_bounded b x ~bound;
        Codes.read_bounded (Bitbuf.reader b) ~bound = x);
    prop "delta never longer than gamma + 1 for x >= 2" pos_nat (fun x ->
        let x = x + 1 in
        Codes.delta_length x <= Codes.gamma_length x + 1);
    prop "combination roundtrip" combination_arb (fun (n, c) ->
        Rank.unrank_combination ~n ~k:(Array.length c)
          (Rank.rank_combination ~n c)
        = c);
    prop "combination code length" combination_arb (fun (n, c) ->
        let b = Bitbuf.create () in
        Rank.write_combination b ~n c;
        Bitbuf.length b = Rank.combination_length ~n ~k:(Array.length c)
        && Rank.read_combination (Bitbuf.reader b) ~n ~k:(Array.length c) = c);
  ]
