open Umrs_core
open Umrs_store
open Helpers
module Q = Query

(* ---------- fixtures ---------- *)

let with_tmp_dir f =
  let dir = Filename.temp_file "umrs_query" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let rec rm path =
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm (Filename.concat path e)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path
  in
  Fun.protect ~finally:(fun () -> rm dir) (fun () -> f dir)

let ok_exn what = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %s" what (Q.error_to_string e)

(* ---------- differential testing vs a naive oracle ----------

   A random corpus spec: a sorted duplicate-free list of arbitrary
   matrices over {1..d} (Positional variant, so records need not be
   canonical), a stride, and probe matrices for negative lookups. The
   oracle is Corpus.load plus list scans; Query must agree exactly. *)

type spec = {
  s_p : int;
  s_q : int;
  s_d : int;
  s_ms : Matrix.t list;
  s_stride : int;
  s_probes : Matrix.t list;
}

let spec_arb =
  let pool =
    [| (1, 1, 2); (1, 3, 3); (2, 2, 3); (2, 3, 3); (3, 2, 4); (2, 4, 2);
       (4, 4, 2); (3, 3, 3) |]
  in
  Gen.make
    ~print:(fun s ->
      Printf.sprintf "p=%d q=%d d=%d count=%d stride=%d" s.s_p s.s_q s.s_d
        (List.length s.s_ms) s.s_stride)
    (fun st ->
      let s_p, s_q, s_d = pool.(Random.State.int st (Array.length pool)) in
      let raw () =
        Matrix.create_relaxed
          (Array.init s_p (fun _ ->
               Array.init s_q (fun _ -> 1 + Random.State.int st s_d)))
      in
      let n = Random.State.int st 80 in
      let s_ms = List.sort_uniq Matrix.compare_lex (List.init n (fun _ -> raw ())) in
      { s_p; s_q; s_d; s_ms; s_stride = 1 + Random.State.int st 12;
        s_probes = List.init 15 (fun _ -> raw ()) })

let oracle_rank arr m =
  Array.fold_left (fun acc x -> if Matrix.compare_lex x m < 0 then acc + 1 else acc) 0 arr

let oracle_mem arr m = Array.exists (fun x -> Matrix.compare_lex x m = 0) arr

let oracle_range arr prefix =
  ( Array.fold_left
      (fun acc x -> if Matrix.compare_lex_prefix prefix x > 0 then acc + 1 else acc)
      0 arr,
    Array.fold_left
      (fun acc x -> if Matrix.compare_lex_prefix prefix x >= 0 then acc + 1 else acc)
      0 arr )

let check_spec s =
  with_tmp_dir @@ fun dir ->
  let path = Filename.concat dir "c.umrs" in
  ignore
    (Corpus.write_list ~path ~variant:Canonical.Positional ~p:s.s_p ~q:s.s_q
       ~d:s.s_d s.s_ms);
  ignore (ok_exn "build" (Q.build ~corpus:path ~stride:s.s_stride ()));
  let t = ok_exn "open" (Q.open_ ~corpus:path ()) in
  Fun.protect ~finally:(fun () -> Q.close t) @@ fun () ->
  let arr = Array.of_list s.s_ms in
  let n = Array.length arr in
  let members_ok =
    Array.for_all Fun.id
      (Array.mapi
         (fun i m ->
           Matrix.compare_lex (Q.nth t i) m = 0 && Q.mem t m && Q.rank t m = i)
         arr)
  in
  let probes_ok =
    List.for_all
      (fun m -> Q.mem t m = oracle_mem arr m && Q.rank t m = oracle_rank arr m)
      s.s_probes
  in
  let prefixes_ok =
    List.for_all
      (fun m ->
        List.for_all
          (fun len ->
            let prefix =
              Array.init len (fun k -> Matrix.get m (k / s.s_q) (k mod s.s_q))
            in
            Q.range_prefix t prefix = oracle_range arr prefix)
          (List.init (s.s_p * s.s_q + 1) Fun.id))
      (match s.s_probes with [] -> [] | hd :: _ -> List.filteri (fun i _ -> i < 4) s.s_ms @ [ hd ])
  in
  let requests =
    Array.of_list
      (List.concat
         [ List.init n (fun i -> Q.Nth (n - 1 - i));
           List.map (fun m -> Q.Mem m) s.s_probes;
           List.map (fun m -> Q.Rank m) s.s_probes;
           List.filteri (fun i _ -> i < 3) s.s_ms
           |> List.map (fun m -> Q.Range_prefix [| Matrix.get m 0 0 |]);
           List.init (min n 5) (fun i -> Q.Cgraph_of i) ])
  in
  let singles =
    Array.map
      (function
        | Q.Nth i -> Q.R_matrix (Q.nth t i)
        | Q.Mem m -> Q.R_found (Q.mem t m)
        | Q.Rank m -> Q.R_rank (Q.rank t m)
        | Q.Range_prefix prefix ->
          let lo, hi = Q.range_prefix t prefix in
          Q.R_range (lo, hi)
        | Q.Cgraph_of i -> Q.R_graph (Q.cgraph t i))
      requests
  in
  let batch_ok =
    Q.batch ~domains:1 t requests = singles
    && Q.batch ~domains:3 t requests = singles
    && Q.batch t requests = singles
  in
  members_ok && probes_ok && prefixes_ok && batch_ok

(* ---------- deterministic cases ---------- *)

let reference_corpus dir =
  let p, q, d = (2, 4, 3) in
  let path = Filename.concat dir "ref.umrs" in
  let ms = Enumerate.canonical_set ~p ~q ~d () in
  ignore (Corpus.write_list ~path ~variant:Canonical.Full ~p ~q ~d ms);
  (path, Array.of_list ms)

let test_roundtrip_reference () =
  with_tmp_dir @@ fun dir ->
  let path, arr = reference_corpus dir in
  let m = ok_exn "build" (Q.build ~corpus:path ~stride:4 ()) in
  check_int "samples" ((Array.length arr + 3) / 4) m.Q.x_samples;
  check_true "index file exists" (Sys.file_exists (Q.index_path path));
  let t = ok_exn "open" (Q.open_ ~corpus:path ()) in
  Array.iteri
    (fun i x ->
      check_true "nth" (Matrix.equal (Q.nth t i) x);
      check_true "mem" (Q.mem t x);
      check_int "rank" i (Q.rank t x))
    arr;
  check_true "whole-corpus range"
    (Q.range_prefix t [||] = (0, Array.length arr));
  Q.close t;
  check_true "closed nth raises"
    (match Q.nth t 0 with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_cgraph_bridge () =
  with_tmp_dir @@ fun dir ->
  let path, arr = reference_corpus dir in
  ignore (ok_exn "build" (Q.build ~corpus:path ()));
  let t = ok_exn "open" (Q.open_ ~corpus:path ()) in
  Fun.protect ~finally:(fun () -> Q.close t) @@ fun () ->
  Array.iteri
    (fun i m ->
      (* Full-variant records are canonical, hence already normalized:
         the bridge must agree with Cgraph.of_matrix directly. *)
      let g = Q.cgraph t i in
      check_true "cgraph" (g = Cgraph.of_matrix m))
    arr

let test_empty_and_degenerate () =
  with_tmp_dir @@ fun dir ->
  (* empty corpus *)
  let empty = Filename.concat dir "empty.umrs" in
  ignore (Corpus.write_list ~path:empty ~variant:Canonical.Full ~p:2 ~q:2 ~d:3 []);
  ignore (ok_exn "build empty" (Q.build ~corpus:empty ()));
  let t = ok_exn "open empty" (Q.open_ ~corpus:empty ()) in
  let probe = Matrix.create [| [| 1; 1 |]; [| 1; 1 |] |] in
  check_true "empty mem" (not (Q.mem t probe));
  check_int "empty rank" 0 (Q.rank t probe);
  check_true "empty range" (Q.range_prefix t [| 1 |] = (0, 0));
  check_true "empty nth raises"
    (match Q.nth t 0 with _ -> false | exception Invalid_argument _ -> true);
  Q.close t;
  (* d = 1: records pack to zero bytes; only one matrix exists *)
  let one = Filename.concat dir "one.umrs" in
  let m1 = Matrix.create [| [| 1; 1 |] |] in
  ignore (Corpus.write_list ~path:one ~variant:Canonical.Full ~p:1 ~q:2 ~d:1 [ m1 ]);
  ignore (ok_exn "build d=1" (Q.build ~corpus:one ()));
  let t = ok_exn "open d=1" (Q.open_ ~corpus:one ()) in
  check_true "d=1 nth" (Matrix.equal (Q.nth t 0) m1);
  check_true "d=1 mem" (Q.mem t m1);
  check_int "d=1 rank" 0 (Q.rank t m1);
  Q.close t

let test_error_paths () =
  with_tmp_dir @@ fun dir ->
  let path, _ = reference_corpus dir in
  (* no index yet *)
  check_true "missing index is Io"
    (match Q.open_ ~corpus:path () with
    | Error (Q.Io _) -> true
    | _ -> false);
  (* stride validation is a caller error *)
  check_true "stride < 1 raises"
    (match Q.build ~corpus:path ~stride:0 () with
    | _ -> false
    | exception Invalid_argument _ -> true);
  ignore (ok_exn "build" (Q.build ~corpus:path ()));
  (* an index of a different corpus: same instance, fewer records *)
  let other = Filename.concat dir "other.umrs" in
  let ms = Enumerate.canonical_set ~p:2 ~q:4 ~d:3 () in
  ignore
    (Corpus.write_list ~path:other ~variant:Canonical.Full ~p:2 ~q:4 ~d:3
       (List.filteri (fun i _ -> i > 0) ms));
  ignore (ok_exn "build other" (Q.build ~corpus:other ()));
  check_true "foreign index is Mismatch"
    (match Q.open_ ~corpus:path ~index:(Q.index_path other) () with
    | Error (Q.Mismatch _) -> true
    | _ -> false);
  (* different instance entirely *)
  let alien = Filename.concat dir "alien.umrs" in
  ignore
    (Corpus.write_list ~path:alien ~variant:Canonical.Full ~p:2 ~q:2 ~d:2
       (Enumerate.canonical_set ~p:2 ~q:2 ~d:2 ()));
  ignore (ok_exn "build alien" (Q.build ~corpus:alien ()));
  check_true "alien index is Mismatch"
    (match Q.open_ ~corpus:path ~index:(Q.index_path alien) () with
    | Error (Q.Mismatch _) -> true
    | _ -> false);
  (* shape validation on point queries *)
  let t = ok_exn "open" (Q.open_ ~corpus:path ()) in
  Fun.protect ~finally:(fun () -> Q.close t) @@ fun () ->
  check_true "wrong shape raises"
    (match Q.mem t (Matrix.create [| [| 1 |] |]) with
    | _ -> false
    | exception Invalid_argument _ -> true);
  check_true "long prefix raises"
    (match Q.range_prefix t (Array.make 9 1) with
    | _ -> false
    | exception Invalid_argument _ -> true);
  check_true "batch validates up front"
    (match Q.batch t [| Q.Nth 0; Q.Nth 99999 |] with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* Every failing open must close what it opened: loop the error
   branches far past the default 1024-descriptor rlimit, so a leak on
   any branch either trips EMFILE mid-loop or shows up in the final
   /proc/self/fd count. *)
let count_fds () = Array.length (Sys.readdir "/proc/self/fd")

let test_error_paths_do_not_leak_fds () =
  with_tmp_dir @@ fun dir ->
  let path, _ = reference_corpus dir in
  ignore (ok_exn "build" (Q.build ~corpus:path ()));
  let corrupt = Filename.concat dir "corrupt.umrsx" in
  let image =
    let ic = open_in_bin (Q.index_path path) in
    let n = in_channel_length ic in
    let b = Bytes.create n in
    really_input ic b 0 n;
    close_in ic;
    b
  in
  let last = Bytes.length image - 1 in
  Bytes.set image last (Char.chr (Char.code (Bytes.get image last) lxor 0xFF));
  let oc = open_out_bin corrupt in
  output_bytes oc image;
  close_out oc;
  let junk = Filename.concat dir "junk.umrs" in
  let oc = open_out_bin junk in
  output_string oc "this is not a corpus file, but it is long enough to try";
  close_out oc;
  let before = count_fds () in
  for _ = 1 to 2000 do
    (match Q.open_ ~corpus:path ~index:(Filename.concat dir "no.umrsx") () with
    | Error (Q.Io _) -> ()
    | _ -> Alcotest.fail "missing index should be Io");
    (match Q.open_ ~corpus:path ~index:corrupt () with
    | Error (Q.Malformed _) -> ()
    | _ -> Alcotest.fail "corrupt index should be Malformed");
    (match Q.open_ ~corpus:junk ~index:(Q.index_path path) () with
    | Error _ -> ()
    | Ok t ->
      Q.close t;
      Alcotest.fail "junk corpus should not open");
    (match Corpus.open_reader ~path:junk with
    | exception Invalid_argument _ -> ()
    | r ->
      Corpus.close_reader r;
      Alcotest.fail "junk reader should not open")
  done;
  (* and the success path balances too *)
  for _ = 1 to 50 do
    let t = ok_exn "open" (Q.open_ ~corpus:path ()) in
    Q.close t
  done;
  check_int "fd count unchanged across open error branches" before
    (count_fds ())

let test_stride_extremes () =
  with_tmp_dir @@ fun dir ->
  let path, arr = reference_corpus dir in
  List.iter
    (fun stride ->
      let out = Filename.concat dir (Printf.sprintf "s%d.umrsx" stride) in
      ignore (ok_exn "build" (Q.build ~corpus:path ~stride ~out ()));
      let t = ok_exn "open" (Q.open_ ~corpus:path ~index:out ()) in
      Array.iteri
        (fun i m ->
          check_true "nth" (Matrix.equal (Q.nth t i) m);
          check_int "rank" i (Q.rank t m))
        arr;
      Q.close t)
    [ 1; 2; Array.length arr; 10 * Array.length arr ]

(* Mapped and buffered readers are two code paths over the same bytes:
   every answer must be identical, record for record. *)
let test_mmap_matches_buffered () =
  with_tmp_dir @@ fun dir ->
  let path, arr = reference_corpus dir in
  ignore (ok_exn "build" (Q.build ~corpus:path ()));
  let buffered = ok_exn "open buffered" (Q.open_ ~corpus:path ~mmap:false ()) in
  Fun.protect ~finally:(fun () -> Q.close buffered) @@ fun () ->
  let mapped = ok_exn "open mapped" (Q.open_ ~corpus:path ~mmap:true ()) in
  Fun.protect ~finally:(fun () -> Q.close mapped) @@ fun () ->
  let n = Array.length arr in
  check_true "corpus non-trivial" (n >= 3);
  for i = 0 to n - 1 do
    check_true "nth identical"
      (Matrix.compare_lex (Q.nth mapped i) (Q.nth buffered i) = 0);
    check_true "cgraph identical" (Q.cgraph mapped i = Q.cgraph buffered i);
    let m = arr.(i) in
    check_true "mem identical" (Q.mem mapped m = Q.mem buffered m);
    check_int "rank identical" (Q.rank buffered m) (Q.rank mapped m)
  done;
  List.iter
    (fun prefix ->
      check_true "range_prefix identical"
        (Q.range_prefix mapped prefix = Q.range_prefix buffered prefix))
    [ [||]; [| 1 |]; [| 2; 1 |]; [| 3; 3; 3 |] ];
  (* batch runs through worker domains sharing one mapping *)
  let reqs = Array.init n (fun i -> Q.Nth i) in
  check_true "batched reads identical"
    (Q.batch ~domains:3 mapped reqs = Q.batch ~domains:3 buffered reqs)

let suite =
  [
    case "reference corpus roundtrip" test_roundtrip_reference;
    case "cgraph bridge" test_cgraph_bridge;
    case "empty and d=1 corpora" test_empty_and_degenerate;
    case "error paths" test_error_paths;
    case "error paths do not leak fds" test_error_paths_do_not_leak_fds;
    case "stride extremes" test_stride_extremes;
    case "mmap reader matches buffered reader byte for byte"
      test_mmap_matches_buffered;
    Gen.prop ~count:60 "query agrees with the naive oracle" spec_arb check_spec;
  ]
