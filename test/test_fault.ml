(* The fault-injection subsystem itself, and the recovery behaviours it
   exists to prove: plan determinism, the EINTR/short-write syscall
   wrappers, a torn-write + dropped-fsync crash that the builder must
   absorb on resume, connect backoff caps, the Robust circuit breaker,
   and a live server surviving an injected worker-domain death. *)

open Helpers
module Fault = Umrs_fault.Fault
module Io = Umrs_fault.Io
module Wire = Umrs_server.Wire
module Server = Umrs_server.Server
module C = Umrs_client

let with_tmp_dir f =
  let dir = Filename.temp_file "umrs_fault" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let rec rm path =
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm (Filename.concat path e)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path
  in
  Fun.protect ~finally:(fun () -> rm dir) (fun () -> f dir)

let all_points =
  [ Fault.File_write; Fault.File_fsync; Fault.File_close; Fault.File_rename;
    Fault.Dir_fsync; Fault.Sock_read; Fault.Sock_write; Fault.Sock_accept;
    Fault.Sock_connect; Fault.Worker ]

(* ---------- plan determinism ---------- *)

let test_seeded_plans_are_deterministic () =
  let seed = Gen.base_seed () in
  let a = Fault.seeded ~seed ~intensity:0.5 () in
  let b = Fault.seeded ~seed ~intensity:0.5 () in
  List.iter
    (fun pt ->
      for ix = 0 to 199 do
        if a.Fault.decide pt ix <> b.Fault.decide pt ix then
          Alcotest.failf "seed %d: decision differs at (%s, %d)" seed
            (Fault.point_name pt) ix
      done)
    all_points;
  let quiet = Fault.seeded ~seed ~intensity:0.0 () in
  List.iter
    (fun pt ->
      for ix = 0 to 199 do
        if quiet.Fault.decide pt ix <> Fault.Pass then
          Alcotest.failf "intensity 0 injected at (%s, %d)"
            (Fault.point_name pt) ix
      done)
    all_points;
  (* a storm never pulls the plug *)
  let loud = Fault.seeded ~seed ~intensity:1.0 () in
  List.iter
    (fun pt ->
      for ix = 0 to 199 do
        if loud.Fault.decide pt ix = Fault.Crash then
          Alcotest.failf "seeded plan decided Crash at (%s, %d)"
            (Fault.point_name pt) ix
      done)
    all_points

let test_fire_without_plan_is_pass () =
  check_true "disabled" (not (Fault.enabled ()));
  List.iter
    (fun pt -> check_true "pass" (Fault.fire pt = Fault.Pass))
    all_points

(* ---------- syscall wrappers over a pipe ---------- *)

let test_eintr_and_short_write_wrappers () =
  let plan =
    Fault.make_plan ~label:"pipe" (fun pt ix ->
        match (pt, ix) with
        | Fault.Sock_write, 0 -> Fault.Short_write 1
        | Fault.Sock_read, 1 -> Fault.Eintr 3
        | _ -> Fault.Pass)
  in
  let r =
    Fault.with_plan plan (fun () ->
        let rd, wr = Unix.pipe () in
        Fun.protect
          ~finally:(fun () -> Unix.close rd; Unix.close wr)
          (fun () ->
            let msg = Bytes.of_string "torn-but-delivered" in
            (* short write: write_all must loop to completion *)
            Io.write_all wr msg 0 (Bytes.length msg);
            let buf = Bytes.create (Bytes.length msg) in
            (* EINTR storm on the read: the wrapper retries through it *)
            let n = ref 0 in
            while !n < Bytes.length msg do
              n := !n + Io.read rd buf !n (Bytes.length msg - !n)
            done;
            check_true "round-trip" (Bytes.equal buf msg)))
  in
  (match r.Fault.outcome with
  | Ok () -> ()
  | Error () -> Alcotest.fail "unexpected simulated crash");
  (* one write_all call + one (storm-absorbing) read call *)
  check_int "points fired" 2 r.Fault.points

(* ---------- torn write + dropped fsync, then recovery ---------- *)

(* A lying disk: every fsync is dropped, then the power goes out
   mid-build. Resume faces torn checkpoint artifacts and must degrade
   them to "absent" and still produce byte-identical output. *)
let test_torn_write_dropped_fsync_recovery () =
  with_tmp_dir @@ fun dir ->
  let seed = Gen.base_seed () in
  let p, q, d = (2, 3, 2) in
  let ck = Filename.concat dir "ck" in
  let out = Filename.concat dir "out.corpus" in
  let ref_out = Filename.concat dir "ref.corpus" in
  ignore (Umrs_store.Builder.build ~p ~q ~d ~out:ref_out ());
  let build () =
    Umrs_store.Builder.build ~domains:1 ~checkpoint_dir:ck
      ~checkpoint_every:256 ~p ~q ~d ~out ()
  in
  let counted = Fault.with_plan (Fault.pass_plan ~seed ()) build in
  check_true "counting run survives" (counted.Fault.outcome <> Error ());
  let points = counted.Fault.points in
  check_true "enough fault points" (points > 2);
  Sys.remove out;
  let at = points / 2 in
  let liar =
    Fault.make_plan ~label:"liar" ~seed ~torn_align:64 (fun pt ix ->
        if ix = at then Fault.Crash
        else
          match pt with
          | Fault.File_fsync | Fault.Dir_fsync -> Fault.Drop_fsync
          | _ -> Fault.Pass)
  in
  let crashed = Fault.with_plan liar build in
  check_true "crashed" (crashed.Fault.outcome = Error ());
  (* resume on honest hardware: torn artifacts degrade, output is
     byte-identical *)
  let o = Umrs_store.Builder.build ~domains:1 ~checkpoint_dir:ck ~resume:true
      ~checkpoint_every:256 ~p ~q ~d ~out ()
  in
  ignore o;
  let read_file path =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  check_true "byte-identical after recovery"
    (read_file out = read_file ref_out);
  let v = Umrs_store.Corpus.verify ~path:out in
  check_true "verify clean" (v.Umrs_store.Corpus.v_problems = [])

(* ---------- connect backoff caps ---------- *)

let test_connect_backoff_caps () =
  with_tmp_dir @@ fun dir ->
  let dead = Wire.Unix_sock (Filename.concat dir "nobody-home.sock") in
  let rng = Random.State.make [| Gen.base_seed (); 7 |] in
  let t0 = Unix.gettimeofday () in
  (match C.connect ~retries:4 ~backoff:0.01 ~max_backoff:0.02 ~rng dead with
  | Ok _ -> Alcotest.fail "connected to a dead socket"
  | Error (C.Io _) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (C.error_to_string e));
  let per_sleep_cap = Unix.gettimeofday () -. t0 in
  (* 4 sleeps, each < 0.02 s of jitter: well under a second *)
  check_true "per-sleep cap respected" (per_sleep_cap < 1.0);
  let t1 = Unix.gettimeofday () in
  (match
     C.connect ~retries:50 ~backoff:10.0 ~max_backoff:10.0
       ~max_total_wait:0.05 ~rng dead
   with
  | Ok _ -> Alcotest.fail "connected to a dead socket"
  | Error _ -> ());
  check_true "total-wait cap respected" (Unix.gettimeofday () -. t1 < 2.0)

(* ---------- circuit breaker ---------- *)

let test_circuit_breaker_opens_and_fastfails () =
  with_tmp_dir @@ fun dir ->
  let dead = Wire.Unix_sock (Filename.concat dir "nobody-home.sock") in
  let policy =
    { C.Robust.default_policy with
      C.Robust.connect_retries = 0; call_retries = 0; base_backoff = 0.001;
      max_backoff = 0.002; breaker_threshold = 2; breaker_cooldown = 60.0 }
  in
  let conn =
    C.Robust.create ~policy ~rng:(Random.State.make [| Gen.base_seed () |]) dead
  in
  Fun.protect ~finally:(fun () -> C.Robust.close conn) @@ fun () ->
  for _ = 1 to 5 do
    match C.Robust.call conn (Wire.Ping 1) with
    | Ok _ -> Alcotest.fail "dead socket answered"
    | Error _ -> ()
  done;
  let s = C.Robust.stats conn in
  check_int "calls" 5 s.C.Robust.calls;
  check_true "breaker opened" (s.C.Robust.breaker_opens >= 1);
  (* threshold 2, cooldown 60 s: calls 3..5 must not touch the socket *)
  check_int "fast-fails" 3 s.C.Robust.breaker_fastfails

(* ---------- worker supervisor ---------- *)

let test_worker_crash_is_answered_and_pool_restored () =
  with_tmp_dir @@ fun dir ->
  let addr = Wire.Unix_sock (Filename.concat dir "chaos.sock") in
  let cfg = { (Server.default_config addr) with Server.workers = 1 } in
  let srv =
    match Server.start cfg with
    | Ok srv -> srv
    | Error e -> Alcotest.failf "server start: %s" e
  in
  let c =
    match C.connect ~retries:5 addr with
    | Ok c -> c
    | Error e -> Alcotest.failf "connect: %s" (C.error_to_string e)
  in
  Fun.protect
    ~finally:(fun () -> C.close c; Server.shutdown srv; Server.wait srv)
    (fun () ->
      let killer =
        Fault.make_plan ~label:"killer" (fun pt _ ->
            match pt with Fault.Worker -> Fault.Exn "boom" | _ -> Fault.Pass)
      in
      let r =
        Fault.with_plan killer (fun () -> C.sleep_ms c 1)
      in
      (match r.Fault.outcome with
      | Ok (Error (C.Refused msg)) ->
        check_true "explains the crash"
          (String.length msg >= 14
           && String.sub msg 0 14 = "internal error")
      | Ok (Ok _) -> Alcotest.fail "killed handler still replied"
      | Ok (Error e) -> Alcotest.failf "wrong error: %s" (C.error_to_string e)
      | Error () -> Alcotest.fail "unexpected simulated crash");
      check_int "one crash counted" 1 (Server.worker_crashes srv);
      (* same connection, faults off: the respawned worker answers *)
      match C.sleep_ms c 1 with
      | Ok _ -> ()
      | Error e ->
        Alcotest.failf "pool not restored: %s" (C.error_to_string e))

let suite =
  [
    case "seeded plans are deterministic" test_seeded_plans_are_deterministic;
    case "fire without a plan is Pass" test_fire_without_plan_is_pass;
    case "EINTR storms and short writes are absorbed"
      test_eintr_and_short_write_wrappers;
    case "torn write + dropped fsync recovers on resume"
      test_torn_write_dropped_fsync_recovery;
    case "connect backoff respects its caps" test_connect_backoff_caps;
    case "circuit breaker opens and fast-fails"
      test_circuit_breaker_opens_and_fastfails;
    case "worker crash: answered, counted, pool restored"
      test_worker_crash_is_answered_and_pool_restored;
  ]
