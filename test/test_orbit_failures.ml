open Umrs_core
open Umrs_graph
open Umrs_routing
open Helpers

(* ---------- orbits and the Monte-Carlo estimator ---------- *)

let test_orbit_sizes_explicit () =
  (* constant 2x2 matrix over d=3: each row renames independently to
     any of the 3 values: 3 x 3 matrices in the orbit *)
  let m = Matrix.create [| [| 1; 1 |]; [| 1; 1 |] |] in
  check_int "constant orbit" 9 (Orbit.size ~d:3 m);
  (* [1 2; 1 2] over d=3: orbit size 36 (matches class_size) *)
  let m2 = Matrix.create [| [| 1; 2 |]; [| 1; 2 |] |] in
  check_int "nonconstant orbit" 36 (Orbit.size ~d:3 m2)

let test_orbit_matches_class_size () =
  List.iter
    (fun m ->
      check_int
        (Matrix.to_string m)
        (Enumerate.class_size ~p:2 ~q:2 ~d:3 m)
        (Orbit.size ~d:3 m))
    (Enumerate.canonical_set ~p:2 ~q:2 ~d:3 ())

let test_orbit_positional_matches () =
  List.iter
    (fun m ->
      check_int
        (Matrix.to_string m)
        (Enumerate.class_size ~variant:Canonical.Positional ~p:2 ~q:2 ~d:2 m)
        (Orbit.size_positional m))
    (Enumerate.canonical_set ~variant:Canonical.Positional ~p:2 ~q:2 ~d:2 ())

let test_estimator_converges () =
  let st = rng () in
  let e = Orbit.estimate_classes st ~samples:400 ~p:2 ~q:2 ~d:3 in
  let exact = float_of_int (Enumerate.count ~p:2 ~q:2 ~d:3 ()) in
  check_true "within 4 sigma"
    (Float.abs (e.Orbit.mean -. exact) <= 4.0 *. e.Orbit.std_error +. 0.5)

let test_estimator_positional () =
  let st = rng () in
  let e =
    Orbit.estimate_classes ~positional:true st ~samples:400 ~p:2 ~q:2 ~d:2
  in
  check_true "near 7" (Float.abs (e.Orbit.mean -. 7.0) <= 4.0 *. e.Orbit.std_error +. 0.5)

(* ---------- Burnside for the positional variant ---------- *)

let test_burnside_matches_enumeration () =
  List.iter
    (fun (p, q, d) ->
      let exact =
        Enumerate.count ~variant:Canonical.Positional ~p ~q ~d ()
      in
      check_true
        (Printf.sprintf "burnside (%d,%d,%d)" p q d)
        (Bignat.to_int_opt (Count.positional_exact ~p ~q ~d) = Some exact))
    [ (2, 2, 2); (2, 2, 3); (2, 3, 2); (3, 2, 2); (1, 3, 3); (3, 3, 2) ]

let test_burnside_paper_value () =
  check_true "2M(2,2) = 7"
    (Bignat.to_int_opt (Count.positional_exact ~p:2 ~q:2 ~d:2) = Some 7)

let test_burnside_large () =
  (* closed form scales where enumeration cannot: |dM| is within a
     p!q! factor of d^(pq) *)
  let x = Count.positional_exact ~p:6 ~q:6 ~d:5 in
  let lower =
    Bignat.div (Bignat.pow (Bignat.of_int 5) 36)
      (Bignat.of_int (Umrs_graph.Perm.factorial 6 * Umrs_graph.Perm.factorial 6))
  in
  check_true "at least d^(pq)/(p!q!)" (Bignat.compare x lower >= 0);
  check_true "at most d^(pq)"
    (Bignat.compare x (Bignat.pow (Bignat.of_int 5) 36) <= 0)

(* ---------- simulator failure injection ---------- *)

let tables g = (Table_scheme.build g).Scheme.rf

let test_flaky_still_delivers () =
  let st = rng () in
  let rf = tables (Generators.torus 4 4) in
  let pairs = [ (0, 10); (3, 12); (5, 9) ] in
  let s = Simulator.run_flaky st ~loss:0.3 rf ~pairs in
  check_int "all delivered" 3 s.Simulator.delivered;
  (* hops unchanged: retries do not move the packet *)
  let clean = Simulator.run rf ~pairs in
  check_int "same hop totals" clean.Simulator.total_hops s.Simulator.total_hops;
  check_true "but slower" (s.Simulator.rounds >= clean.Simulator.rounds)

let test_flaky_zero_loss_is_clean () =
  let st = rng () in
  let rf = tables (Generators.cycle 8) in
  let pairs = [ (0, 4) ] in
  let s = Simulator.run_flaky st ~loss:0.0 rf ~pairs in
  let clean = Simulator.run rf ~pairs in
  check_int "same rounds" clean.Simulator.rounds s.Simulator.rounds

let test_flaky_zero_loss_equals_run_exactly () =
  (* the lower boundary: loss 0.0 must reproduce [run] stat-for-stat,
     contention and all, not merely match the round count *)
  let st = rng () in
  let rf = tables (Generators.torus 4 4) in
  let pairs = [ (0, 10); (3, 12); (5, 9); (1, 14); (2, 13) ] in
  let s = Simulator.run_flaky st ~loss:0.0 rf ~pairs in
  let clean = Simulator.run rf ~pairs in
  check_true "stats identical" (s = clean)

let test_flaky_total_loss_delivers_nothing () =
  (* the upper boundary: loss 1.0 fails every crossing, so the run can
     only end at the round limit with zero deliveries *)
  let st = rng () in
  let rf = tables (Generators.cycle 8) in
  let pairs = [ (0, 4); (1, 5); (2, 6) ] in
  let limit = 25 in
  let s = Simulator.run_flaky ~round_limit:limit st ~loss:1.0 rf ~pairs in
  check_int "zero delivered" 0 s.Simulator.delivered;
  check_int "zero hops" 0 s.Simulator.total_hops;
  check_true "every packet undelivered"
    (Array.for_all (fun r -> r.Simulator.delivered_at = -1) s.Simulator.results)

let test_flaky_loss_bounds_checked () =
  let rf = tables (Generators.path 3) in
  let raises loss =
    match Simulator.run_flaky (rng ()) ~loss rf ~pairs:[ (0, 2) ] with
    | exception Invalid_argument _ -> true
    | _ -> false
  in
  check_true "loss < 0 rejected" (raises (-0.1));
  check_true "loss > 1 rejected" (raises 1.1)

let test_dead_link_drops () =
  let g = Generators.path 4 in
  let rf = tables g in
  let s =
    Simulator.run_with_dead_links ~dead:[ (1, 2) ] rf ~pairs:[ (0, 3); (3, 2) ]
  in
  (* 0 -> 3 must cross (1,2): dropped. 3 -> 2 does not: delivered. *)
  check_int "one delivered" 1 s.Simulator.delivered;
  check_true "drop recorded"
    (Array.exists (fun r -> r.Simulator.delivered_at = -1) s.Simulator.results)

let test_dead_link_direction_blind () =
  (* both directions of the listed edge are dead *)
  let g = Generators.path 3 in
  let rf = tables g in
  let s =
    Simulator.run_with_dead_links ~dead:[ (0, 1) ] rf ~pairs:[ (0, 2); (2, 0) ]
  in
  check_int "none delivered" 0 s.Simulator.delivered

(* ---------- dot export ---------- *)

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  go 0

let test_dot_renders () =
  let g = Generators.cycle 4 in
  let s = Dot.to_dot ~name:"c4" g in
  check_true "header" (contains s "graph \"c4\"");
  check_true "edge" (contains s "0 -- 1;");
  check_true "all edges" (contains s "3 -- 0;" || contains s "0 -- 3;")

let test_dot_ports () =
  let g = Generators.path 3 in
  let s = Dot.to_dot ~show_ports:true g in
  check_true "digraph" (contains s "digraph");
  check_true "taillabel" (contains s "taillabel=\"1\"")

let test_dot_path () =
  let g = Generators.cycle 5 in
  let s = Dot.path_to_dot g [ 0; 1; 2 ] in
  check_true "emphasized" (contains s "penwidth=3");
  check_true "plain edge kept" (contains s "2 -- 3;")

let suite =
  [
    case "orbit sizes (explicit)" test_orbit_sizes_explicit;
    case "orbit = class size (full)" test_orbit_matches_class_size;
    case "orbit = class size (positional)" test_orbit_positional_matches;
    case "estimator converges (full)" test_estimator_converges;
    case "estimator converges (positional)" test_estimator_positional;
    case "burnside matches enumeration" test_burnside_matches_enumeration;
    case "burnside gives the paper's 7" test_burnside_paper_value;
    case "burnside at scale" test_burnside_large;
    case "flaky links still deliver" test_flaky_still_delivers;
    case "zero loss = clean run" test_flaky_zero_loss_is_clean;
    case "loss 0.0 equals run exactly" test_flaky_zero_loss_equals_run_exactly;
    case "loss 1.0 delivers nothing" test_flaky_total_loss_delivers_nothing;
    case "loss outside [0,1] rejected" test_flaky_loss_bounds_checked;
    case "dead link drops crossing packets" test_dead_link_drops;
    case "dead links are bidirectional" test_dead_link_direction_blind;
    case "dot renders" test_dot_renders;
    case "dot with ports" test_dot_ports;
    case "dot path highlight" test_dot_path;
    prop ~count:40 "orbit sizes divide the group-bound" arbitrary_matrix
      (fun m ->
        let p, q = Matrix.dims m in
        p > 3 || q > 3
        ||
        let d = max 2 (Matrix.max_entry m) in
        let orbit = Orbit.size ~d m in
        orbit >= 1
        && orbit
           <= Umrs_graph.Perm.factorial p * Umrs_graph.Perm.factorial q
              * int_of_float
                  (Float.pow (float_of_int (Umrs_graph.Perm.factorial d)) (float_of_int p)));
  ]
