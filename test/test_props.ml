open Umrs_graph
open Helpers

let test_is_tree () =
  check_true "path" (Props.is_tree (Generators.path 6));
  check_true "star" (Props.is_tree (Generators.star 6));
  check_true "cycle not" (not (Props.is_tree (Generators.cycle 6)));
  check_true "disconnected not" (not (Props.is_tree (Graph.empty 3)))

let test_degree_histogram () =
  let h = Props.degree_histogram (Generators.star 5) in
  check_true "star histogram" (h = [ (1, 4); (4, 1) ])

let test_girth () =
  check_true "tree" (Props.girth (Generators.path 5) = None);
  check_true "triangle" (Props.girth (Generators.complete 4) = Some 3);
  check_true "C7" (Props.girth (Generators.cycle 7) = Some 7);
  check_true "hypercube" (Props.girth (Generators.hypercube 3) = Some 4)

let test_bipartite () =
  check_true "even cycle" (Props.is_bipartite (Generators.cycle 8));
  check_true "odd cycle not" (not (Props.is_bipartite (Generators.cycle 7)));
  check_true "grid" (Props.is_bipartite (Generators.grid 3 4))

let test_average_degree () =
  Alcotest.(check (float 1e-9))
    "cycle" 2.0
    (Props.average_degree (Generators.cycle 9));
  Alcotest.(check (float 1e-9))
    "K5" 4.0
    (Props.average_degree (Generators.complete 5))

let test_chordal () =
  check_true "complete" (Props.is_chordal (Generators.complete 6));
  check_true "tree" (Props.is_chordal (Generators.path 7));
  check_true "C4 not" (not (Props.is_chordal (Generators.cycle 4)));
  check_true "C6 not" (not (Props.is_chordal (Generators.cycle 6)))

let suite =
  [
    case "is_tree" test_is_tree;
    case "degree_histogram" test_degree_histogram;
    case "girth" test_girth;
    case "bipartite" test_bipartite;
    case "average_degree" test_average_degree;
    case "chordal" test_chordal;
    Gen.prop "histogram sums to order" (Gen.connected_graph ()) (fun g ->
        List.fold_left (fun acc (_, c) -> acc + c) 0 (Props.degree_histogram g)
        = Graph.order g);
    Gen.prop "trees are chordal and bipartite" (Gen.tree ()) (fun t ->
        Props.is_chordal t && Props.is_bipartite t);
  ]
