(* Corruption fuzzing for the on-disk formats (corpus + index).

   The contract: no mutation or truncation of either file may escape
   the error vocabulary. [Corpus.verify]/[Corpus.load] report problems
   or raise [Invalid_argument]/[Sys_error] only; [Query.open_] never
   raises on file content - everything comes back as [Error _].
   Detection guarantees: every corpus record-region mutation and every
   truncation is reported (corpus header damage may hide in reserved,
   un-checksummed bytes - corpus format v1 keeps them outside the
   checksum); the index checksum covers its whole file, so EVERY index
   mutation is detected.

   All randomness is seeded; a failure message carries the seed and the
   mutation (offset/length), per the repro convention in
   doc/TUTORIAL.md. *)

open Umrs_core
open Umrs_store
open Helpers
module Q = Query

let seed = 0xFA22

let with_tmp_dir f =
  let dir = Filename.temp_file "umrs_fuzz" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let rec rm path =
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm (Filename.concat path e)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path
  in
  Fun.protect ~finally:(fun () -> rm dir) (fun () -> f dir)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  Bytes.of_string s

let write_file path b =
  let oc = open_out_bin path in
  output_bytes oc b;
  close_out oc

(* A valid corpus+index pair to mutate: the (2,4,3) canonical set plus
   a random Positional corpus, exercising both decode paths. *)
let fixtures dir =
  let a = Filename.concat dir "a.umrs" in
  ignore
    (Corpus.write_list ~path:a ~variant:Canonical.Full ~p:2 ~q:4 ~d:3
       (Enumerate.canonical_set ~p:2 ~q:4 ~d:3 ()));
  ignore (Result.get_ok (Q.build ~corpus:a ~stride:3 ()));
  let b = Filename.concat dir "b.umrs" in
  let st = Random.State.make [| seed; 7 |] in
  let ms =
    List.sort_uniq Matrix.compare_lex
      (List.init 40 (fun _ ->
           Matrix.create_relaxed
             (Array.init 3 (fun _ ->
                  Array.init 3 (fun _ -> 1 + Random.State.int st 3)))))
  in
  ignore (Corpus.write_list ~path:b ~variant:Canonical.Positional ~p:3 ~q:3 ~d:3 ms);
  ignore (Result.get_ok (Q.build ~corpus:b ~stride:5 ()));
  [ (a, Q.index_path a); (b, Q.index_path b) ]

let flip st bytes =
  let off = Random.State.int st (Bytes.length bytes) in
  let b = Bytes.copy bytes in
  let old = Bytes.get_uint8 b off in
  Bytes.set_uint8 b off ((old + 1 + Random.State.int st 255) land 0xFF);
  (off, b)

let test_corpus_byte_flips () =
  with_tmp_dir @@ fun dir ->
  let st = Random.State.make [| seed; 1 |] in
  let mutant = Filename.concat dir "mutant" in
  List.iter
    (fun (corpus, _) ->
      let orig = read_file corpus in
      for trial = 1 to 150 do
        let off, b = flip st orig in
        write_file mutant b;
        match Corpus.verify ~path:mutant with
        | v ->
          if v.Corpus.v_problems = [] && off >= Corpus.header_bytes then
            Alcotest.failf
              "record-byte flip undetected (seed %d, %s, offset %d, trial %d)"
              seed corpus off trial
        | exception Invalid_argument _ -> ()
        | exception Sys_error _ -> ()
        | exception e ->
          Alcotest.failf "verify raised %s (seed %d, %s, offset %d)"
            (Printexc.to_string e) seed corpus off
      done)
    (fixtures dir)

let test_corpus_truncations () =
  with_tmp_dir @@ fun dir ->
  let mutant = Filename.concat dir "mutant" in
  List.iter
    (fun (corpus, _) ->
      let orig = read_file corpus in
      for len = 0 to Bytes.length orig - 1 do
        write_file mutant (Bytes.sub orig 0 len);
        match Corpus.verify ~path:mutant with
        | v ->
          if v.Corpus.v_problems = [] then
            Alcotest.failf "truncation to %d of %d undetected (%s)" len
              (Bytes.length orig) corpus
        | exception Invalid_argument _ -> ()
        | exception Sys_error _ -> ()
        | exception e ->
          Alcotest.failf "verify raised %s (%s truncated to %d)"
            (Printexc.to_string e) corpus len
      done)
    (fixtures dir)

let test_index_byte_flips () =
  with_tmp_dir @@ fun dir ->
  let st = Random.State.make [| seed; 2 |] in
  let mutant = Filename.concat dir "mutant" in
  List.iter
    (fun (corpus, index) ->
      let orig = read_file index in
      for trial = 1 to 150 do
        let off, b = flip st orig in
        write_file mutant b;
        match Q.open_ ~corpus ~index:mutant () with
        | Error _ -> ()
        | Ok _ ->
          Alcotest.failf
            "index flip accepted (seed %d, %s, offset %d, trial %d)" seed
            index off trial
        | exception e ->
          Alcotest.failf "open_ raised %s (seed %d, %s, offset %d)"
            (Printexc.to_string e) seed index off
      done)
    (fixtures dir)

let test_index_truncations () =
  with_tmp_dir @@ fun dir ->
  let mutant = Filename.concat dir "mutant" in
  List.iter
    (fun (corpus, index) ->
      let orig = read_file index in
      for len = 0 to Bytes.length orig - 1 do
        write_file mutant (Bytes.sub orig 0 len);
        match Q.open_ ~corpus ~index:mutant () with
        | Error _ -> ()
        | Ok _ -> Alcotest.failf "index truncation to %d accepted (%s)" len index
        | exception e ->
          Alcotest.failf "open_ raised %s (%s truncated to %d)"
            (Printexc.to_string e) index len
      done)
    (fixtures dir)

(* Corpus header v1 keeps a few bytes outside any checksum; flips
   there are undetectable by design (the index checksum closed this gap
   for .umrsx files, the corpus format is frozen until a schema bump). *)
let corpus_reserved_byte off =
  off = 11 || off = 18 || off = 19 || (off >= 36 && off < Corpus.header_bytes)

let test_corpus_mutation_vs_index () =
  (* Flipping the CORPUS after indexing. open_ deliberately does not
     rescan records (that is Corpus.verify's job), so the pair of tools
     must cover every flip: open_ refuses header damage via the
     count/dims/checksum binding, verify catches record damage, and
     only reserved-header-byte flips may pass both. *)
  with_tmp_dir @@ fun dir ->
  let st = Random.State.make [| seed; 3 |] in
  let mutant = Filename.concat dir "mutant.umrs" in
  List.iter
    (fun (corpus, index) ->
      let orig = read_file corpus in
      for trial = 1 to 100 do
        let off, b = flip st orig in
        write_file mutant b;
        match Q.open_ ~corpus:mutant ~index () with
        | Error _ -> ()
        | Ok t ->
          Q.close t;
          let verify_clean =
            match Corpus.verify ~path:mutant with
            | v -> v.Corpus.v_problems = []
            | exception _ -> false
          in
          if verify_clean && not (corpus_reserved_byte off) then
            Alcotest.failf
              "flip passed both open_ and verify (seed %d, offset %d, \
               trial %d)"
              seed off trial
        | exception e ->
          Alcotest.failf "open_ raised %s (seed %d, %s, offset %d)"
            (Printexc.to_string e) seed corpus off
      done)
    (fixtures dir)

let test_garbage_files () =
  (* Random bytes are neither a corpus nor an index. *)
  with_tmp_dir @@ fun dir ->
  let st = Random.State.make [| seed; 4 |] in
  let corpus = Filename.concat dir "g.umrs" in
  ignore
    (Corpus.write_list ~path:corpus ~variant:Canonical.Full ~p:2 ~q:2 ~d:2
       (Enumerate.canonical_set ~p:2 ~q:2 ~d:2 ()));
  let garbage = Filename.concat dir "garbage" in
  for trial = 1 to 150 do
    let n = Random.State.int st 300 in
    let b = Bytes.init n (fun _ -> Char.chr (Random.State.int st 256)) in
    write_file garbage b;
    (match Q.open_ ~corpus ~index:garbage () with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "garbage index accepted (seed %d, trial %d)" seed trial
    | exception e ->
      Alcotest.failf "open_ raised %s on garbage (seed %d, trial %d)"
        (Printexc.to_string e) seed trial);
    match Corpus.verify ~path:garbage with
    | _ -> ()
    | exception Invalid_argument _ -> ()
    | exception Sys_error _ -> ()
    | exception e ->
      Alcotest.failf "verify raised %s on garbage (seed %d, trial %d)"
        (Printexc.to_string e) seed trial
  done

let suite =
  [
    case "corpus byte flips" test_corpus_byte_flips;
    case "corpus truncations" test_corpus_truncations;
    case "index byte flips" test_index_byte_flips;
    case "index truncations" test_index_truncations;
    case "corpus mutated under an index" test_corpus_mutation_vs_index;
    case "garbage files" test_garbage_files;
  ]
