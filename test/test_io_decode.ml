open Umrs_graph
open Umrs_routing
open Helpers

(* ---------- graph serialization ---------- *)

let test_io_roundtrip_exact () =
  let g = Generators.petersen () in
  let g' = Graph_io.of_string (Graph_io.to_string g) in
  check_true "ports preserved exactly" (Graph.equal g g')

let test_io_empty_rows () =
  let g = Graph.empty 3 in
  let g' = Graph_io.of_string (Graph_io.to_string g) in
  check_true "isolated vertices survive" (Graph.equal g g')

let test_io_comments () =
  let s = "# a triangle\n3\n1 2\n0 2\n# ports of 2\n0 1\n" in
  let g = Graph_io.of_string s in
  check_int "order" 3 (Graph.order g);
  check_int "size" 3 (Graph.size g)

let test_io_rejects_garbage () =
  let rejects s =
    try ignore (Graph_io.of_string s); false
    with Invalid_argument _ | Failure _ -> true
  in
  check_true "empty" (rejects "");
  check_true "bad header" (rejects "x\n1 2\n");
  check_true "missing rows" (rejects "4\n1\n0\n");
  check_true "asymmetric" (rejects "2\n1\n\n")

let test_io_file_roundtrip () =
  let g = Generators.torus 4 4 in
  let path = Filename.temp_file "umrs" ".graph" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Graph_io.save g ~path;
      check_true "file roundtrip" (Graph.equal g (Graph_io.load ~path)))

(* Failure paths on actual files, not just strings: these are the
   errors routing_lab's file: prefix must surface cleanly. *)

let with_graph_file content f =
  let path = Filename.temp_file "umrs" ".graph" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc content;
      close_out oc;
      f path)

let test_io_load_missing_file () =
  let path = Filename.temp_file "umrs" ".graph" in
  Sys.remove path;
  check_true "missing file raises Sys_error"
    (try ignore (Graph_io.load ~path); false with Sys_error _ -> true)

let test_io_load_truncated_file () =
  (* Valid header claiming 4 vertices, rows cut off mid-way. *)
  with_graph_file "4\n1 2\n0\n" (fun path ->
      check_true "truncated file rejected"
        (try ignore (Graph_io.load ~path); false
         with Invalid_argument _ | Failure _ -> true))

let test_io_load_bad_header () =
  with_graph_file "petersen\n1 2\n" (fun path ->
      check_true "non-numeric header rejected"
        (try ignore (Graph_io.load ~path); false
         with Invalid_argument _ | Failure _ -> true));
  with_graph_file "" (fun path ->
      check_true "empty file rejected"
        (try ignore (Graph_io.load ~path); false
         with Invalid_argument _ | Failure _ -> true))

let test_io_save_unwritable_path () =
  let path = "/nonexistent-umrs-dir/out.graph" in
  check_true "save into missing directory raises Sys_error"
    (try Graph_io.save (Generators.petersen ()) ~path; false
     with Sys_error _ -> true)

(* ---------- landmark decoding ---------- *)

let test_landmark_decode_roundtrip () =
  let g = Generators.torus 4 4 in
  let b = Landmark_scheme.build g in
  for v = 0 to 15 do
    let d =
      Landmark_scheme.decode_vertex (b.Scheme.local_encoding v)
        ~degree:(Graph.degree g v)
    in
    check_int "order" 16 d.Landmark_scheme.dec_order;
    check_int "self" v d.Landmark_scheme.dec_self;
    check_true "landmark ports present"
      (Array.length d.Landmark_scheme.dec_landmark_ports > 0);
    (* ports in range *)
    Array.iter
      (fun p -> check_true "port range" (p >= 0 && p <= Graph.degree g v))
      d.Landmark_scheme.dec_landmark_ports;
    Array.iter
      (fun (w, p) ->
        check_true "cluster entry range"
          (w >= 0 && w < 16 && p >= 1 && p <= Graph.degree g v))
      d.Landmark_scheme.dec_cluster;
    check_int "one child table per landmark"
      (Array.length d.Landmark_scheme.dec_landmark_ports)
      (Array.length d.Landmark_scheme.dec_children)
  done

let test_landmark_decode_consumes_exactly () =
  (* decoding must consume the full encoding: lengths agree *)
  let g = Generators.petersen () in
  let b = Landmark_scheme.build g in
  for v = 0 to 9 do
    let buf = b.Scheme.local_encoding v in
    (* re-encode from the decoded data is beyond scope; instead decode
       then check no trailing surplus by decoding a truncated buffer
       and expecting failure *)
    let bits = Umrs_bitcode.Bitbuf.to_bool_array buf in
    if Array.length bits > 8 then begin
      let truncated =
        Umrs_bitcode.Bitbuf.of_bool_array
          (Array.sub bits 0 (Array.length bits - 8))
      in
      check_true "truncation detected"
        (try
           ignore
             (Landmark_scheme.decode_vertex truncated
                ~degree:(Graph.degree g v));
           (* decoding may still succeed if the cut hits padding-free
              fields; accept either, the roundtrip test above is the
              real check *)
           true
         with Invalid_argument _ -> true)
    end
  done

let suite =
  [
    case "io exact roundtrip (ports)" test_io_roundtrip_exact;
    case "io isolated vertices" test_io_empty_rows;
    case "io comments" test_io_comments;
    case "io rejects garbage" test_io_rejects_garbage;
    case "io file roundtrip" test_io_file_roundtrip;
    case "io load missing file" test_io_load_missing_file;
    case "io load truncated file" test_io_load_truncated_file;
    case "io load bad header" test_io_load_bad_header;
    case "io save unwritable path" test_io_save_unwritable_path;
    case "landmark decode roundtrip" test_landmark_decode_roundtrip;
    case "landmark decode boundary" test_landmark_decode_consumes_exactly;
    prop ~count:40 "io roundtrip on random graphs" arbitrary_connected_graph
      (fun g -> Graph.equal g (Graph_io.of_string (Graph_io.to_string g)));
    prop ~count:25 "io roundtrip preserves routing tables"
      arbitrary_connected_graph (fun g ->
        let g' = Graph_io.of_string (Graph_io.to_string g) in
        Table_scheme.next_hop_matrix g = Table_scheme.next_hop_matrix g');
  ]
