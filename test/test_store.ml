open Umrs_core
open Umrs_store
open Helpers

(* ---------- fixtures ---------- *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let with_tmp_dir f =
  let dir = Filename.temp_file "umrs_store" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let rec rm path =
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm (Filename.concat path e)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path
  in
  Fun.protect ~finally:(fun () -> rm dir) (fun () -> f dir)

let instances = [ (2, 2, 2); (2, 4, 3); (3, 3, 2) ]
let variants = [ Canonical.Full; Canonical.Positional ]

let variant_label = function
  | Canonical.Full -> "full"
  | Canonical.Positional -> "positional"

let strictly_sorted ms =
  let rec go = function
    | a :: (b :: _ as rest) -> Matrix.compare_lex a b < 0 && go rest
    | _ -> true
  in
  go ms

(* ---------- record codec ---------- *)

let test_record_roundtrip () =
  List.iter
    (fun (p, q, d) ->
      List.iter
        (fun variant ->
          List.iter
            (fun m ->
              let b = Corpus.Record.encode ~p ~q ~d m in
              check_int "record size"
                (Corpus.Record.bytes ~p ~q ~d)
                (Bytes.length b);
              check_true "record decode"
                (Matrix.equal m (Corpus.Record.decode ~p ~q ~d ~variant b)))
            (Enumerate.canonical_set ~variant ~p ~q ~d ()))
        variants)
    instances

let test_record_rejects_bad_entry () =
  let m = Matrix.create [| [| 1; 2 |]; [| 1; 2 |] |] in
  check_true "entry 2 out of range for d=1"
    (try ignore (Corpus.Record.encode ~p:2 ~q:2 ~d:1 m); false
     with Invalid_argument _ -> true);
  check_true "dimension mismatch"
    (try ignore (Corpus.Record.encode ~p:3 ~q:2 ~d:2 m); false
     with Invalid_argument _ -> true)

(* ---------- corpus round-trips ---------- *)

let test_corpus_roundtrip () =
  with_tmp_dir @@ fun dir ->
  List.iter
    (fun (p, q, d) ->
      List.iter
        (fun variant ->
          let name = Printf.sprintf "%d%d%d_%s" p q d (variant_label variant) in
          let set = Enumerate.canonical_set ~variant ~p ~q ~d () in
          let path = Filename.concat dir (name ^ ".corpus") in
          let h = Corpus.write_list ~path ~variant ~p ~q ~d set in
          check_int (name ^ " count") (List.length set) h.Corpus.count;
          let h', set' = Corpus.load ~path in
          check_true (name ^ " header") (h = h');
          check_true (name ^ " set") (List.for_all2 Matrix.equal set set');
          check_true (name ^ " order") (strictly_sorted set');
          (* Same set written twice -> byte-identical files. *)
          let path2 = Filename.concat dir (name ^ "_again.corpus") in
          ignore (Corpus.write_list ~path:path2 ~variant ~p ~q ~d set);
          check_true (name ^ " deterministic bytes")
            (read_file path = read_file path2))
        variants)
    instances

let test_corpus_byte_identity_across_domains () =
  (* The builder's output is a pure function of the instance: shard
     count must not leak into the bytes. *)
  with_tmp_dir @@ fun dir ->
  List.iter
    (fun (p, q, d) ->
      let files =
        List.map
          (fun domains ->
            let path = Filename.concat dir (Printf.sprintf "dom%d.corpus" domains) in
            ignore (Builder.build ~domains ~p ~q ~d ~out:path ());
            read_file path)
          [ 1; 2; 5 ]
      in
      match files with
      | a :: rest ->
        List.iter
          (fun b ->
            check_true
              (Printf.sprintf "(%d,%d,%d) domain-count independent" p q d)
              (a = b))
          rest
      | [] -> assert false)
    instances

let test_corpus_streaming_reader () =
  with_tmp_dir @@ fun dir ->
  let p, q, d = (2, 4, 3) in
  let set = Enumerate.canonical_set ~p ~q ~d () in
  let path = Filename.concat dir "stream.corpus" in
  ignore (Corpus.write_list ~path ~variant:Canonical.Full ~p ~q ~d set);
  let r = Corpus.open_reader ~path in
  let got = ref [] in
  let rec drain () =
    match Corpus.read_next r with
    | Some m -> got := m :: !got; drain ()
    | None -> ()
  in
  drain ();
  Corpus.close_reader r;
  check_true "stream order" (List.for_all2 Matrix.equal set (List.rev !got))

let test_writer_rejects_unsorted () =
  with_tmp_dir @@ fun dir ->
  let path = Filename.concat dir "bad.corpus" in
  let set = Enumerate.canonical_set ~p:2 ~q:2 ~d:3 () in
  let w = Corpus.create_writer ~path ~variant:Canonical.Full ~p:2 ~q:2 ~d:3 in
  check_true "out-of-order write raises"
    (try
       List.iter (Corpus.write w) (List.rev set);
       false
     with Invalid_argument _ -> true)

(* ---------- corruption detection ---------- *)

let test_verify_detects_damage () =
  with_tmp_dir @@ fun dir ->
  let p, q, d = (2, 4, 3) in
  let path = Filename.concat dir "good.corpus" in
  let set = Enumerate.canonical_set ~p ~q ~d () in
  ignore (Corpus.write_list ~path ~variant:Canonical.Full ~p ~q ~d set);
  let good = read_file path in
  check_true "intact verifies clean"
    ((Corpus.verify ~path).Corpus.v_problems = []);
  let rewrite s =
    let oc = open_out_bin path in
    output_string oc s;
    close_out oc
  in
  (* Truncation mid-record. *)
  rewrite (String.sub good 0 (String.length good - 1));
  check_true "truncation detected"
    ((Corpus.verify ~path).Corpus.v_problems <> []);
  (* Flipped record byte -> checksum mismatch. *)
  let flipped = Bytes.of_string good in
  Bytes.set flipped (Corpus.header_bytes + 1)
    (Char.chr (Char.code (Bytes.get flipped (Corpus.header_bytes + 1)) lxor 0xff));
  rewrite (Bytes.to_string flipped);
  check_true "corruption detected"
    ((Corpus.verify ~path).Corpus.v_problems <> []);
  check_true "load refuses corrupt file"
    (try ignore (Corpus.load ~path); false with Invalid_argument _ -> true);
  (* Trailing garbage. *)
  rewrite (good ^ "x");
  check_true "trailing bytes detected"
    ((Corpus.verify ~path).Corpus.v_problems <> []);
  (* Bad magic raises even for verify. *)
  rewrite ("XXXXXXXX" ^ String.sub good 8 (String.length good - 8));
  check_true "bad magic raises"
    (try ignore (Corpus.verify ~path); false with Invalid_argument _ -> true)

let test_reader_rejects_wrong_header () =
  with_tmp_dir @@ fun dir ->
  let path = Filename.concat dir "short.corpus" in
  let oc = open_out_bin path in
  output_string oc "UMRSCOR";
  close_out oc;
  check_true "short header rejected"
    (try ignore (Corpus.open_reader ~path); false
     with Invalid_argument _ -> true);
  check_true "missing file raises Sys_error"
    (try ignore (Corpus.open_reader ~path:(Filename.concat dir "nope")); false
     with Sys_error _ -> true)

(* ---------- checkpoint protocol ---------- *)

let test_manifest_roundtrip () =
  with_tmp_dir @@ fun dir ->
  let m =
    { Checkpoint.m_p = 2; m_q = 4; m_d = 3; m_variant = Canonical.Positional;
      m_total = 6561; m_checkpoint_every = 500;
      m_ranges = [| (0, 2187); (2187, 4374); (4374, 6561) |] }
  in
  check_true "no manifest yet" (not (Checkpoint.manifest_exists ~dir));
  Checkpoint.save_manifest ~dir m;
  check_true "manifest exists" (Checkpoint.manifest_exists ~dir);
  check_true "manifest roundtrip" (Checkpoint.load_manifest ~dir = m);
  Checkpoint.check_manifest m ~p:2 ~q:4 ~d:3 ~variant:Canonical.Positional
    ~total:6561;
  check_true "mismatch rejected"
    (try
       Checkpoint.check_manifest m ~p:2 ~q:4 ~d:4
         ~variant:Canonical.Positional ~total:6561;
       false
     with Invalid_argument _ -> true)

let test_shard_roundtrip () =
  with_tmp_dir @@ fun dir ->
  let p, q, d = (2, 4, 3) in
  let ms = Enumerate.canonical_set ~p ~q ~d () in
  let s =
    { Checkpoint.s_shard = 1; s_lo = 100; s_hi = 900; s_done = 400;
      s_matrices = ms }
  in
  check_true "absent shard is None"
    (Checkpoint.load_shard ~dir ~p ~q ~d ~variant:Canonical.Full ~shard:1
     = None);
  Checkpoint.save_shard ~dir ~p ~q ~d ~variant:Canonical.Full s;
  (match Checkpoint.load_shard ~dir ~p ~q ~d ~variant:Canonical.Full ~shard:1 with
  | None -> check_true "shard reloads" false
  | Some s' ->
    check_int "lo" s.Checkpoint.s_lo s'.Checkpoint.s_lo;
    check_int "hi" s.Checkpoint.s_hi s'.Checkpoint.s_hi;
    check_int "done" s.Checkpoint.s_done s'.Checkpoint.s_done;
    check_true "matrices"
      (List.for_all2 Matrix.equal s.Checkpoint.s_matrices
         s'.Checkpoint.s_matrices));
  check_true "parameter mismatch rejected"
    (try
       ignore
         (Checkpoint.load_shard ~dir ~p ~q ~d:4 ~variant:Canonical.Full
            ~shard:1);
       false
     with Invalid_argument _ -> true);
  Checkpoint.clear ~dir;
  check_true "clear removes shard"
    (Checkpoint.load_shard ~dir ~p ~q ~d ~variant:Canonical.Full ~shard:1
     = None)

(* ---------- crash + resume ---------- *)

exception Crash

let crash_resume_identical ~domains ~variant ~p ~q ~d () =
  with_tmp_dir @@ fun dir ->
  let straight = Filename.concat dir "straight.corpus" in
  let resumed = Filename.concat dir "resumed.corpus" in
  let ckdir = Filename.concat dir "ck" in
  let h0 =
    (Builder.build ~variant ~domains ~p ~q ~d ~out:straight ()).Builder.o_header
  in
  let crashed = ref false in
  (try
     ignore
       (Builder.build ~variant ~domains ~p ~q ~d ~out:resumed
          ~checkpoint_dir:ckdir ~checkpoint_every:100
          ~on_checkpoint:(fun ~shard:_ ~done_hi:_ -> raise Crash)
          ())
   with Crash -> crashed := true);
  check_true "crash hook fired" !crashed;
  check_true "no corpus from crashed run" (not (Sys.file_exists resumed));
  check_true "manifest survives crash"
    (Checkpoint.manifest_exists ~dir:ckdir);
  (* Resume with a deliberately different domain request: the manifest's
     shard ranges must win. *)
  let o =
    Builder.build ~variant ~domains:(domains + 3) ~p ~q ~d ~out:resumed
      ~checkpoint_dir:ckdir ~resume:true ()
  in
  check_true "resume skipped work" (o.Builder.o_resumed_from > 0);
  check_int "resume kept sharding" domains o.Builder.o_shards;
  check_true "same checksum"
    (o.Builder.o_header.Corpus.checksum = h0.Corpus.checksum);
  check_true "byte-identical to uninterrupted run"
    (read_file straight = read_file resumed);
  check_true "checkpoints cleared on success"
    (not (Checkpoint.manifest_exists ~dir:ckdir))

let test_crash_resume_1_domain () =
  crash_resume_identical ~domains:1 ~variant:Canonical.Full ~p:2 ~q:4 ~d:3 ()

let test_crash_resume_3_domains () =
  crash_resume_identical ~domains:3 ~variant:Canonical.Full ~p:2 ~q:4 ~d:3 ()

let test_crash_resume_positional () =
  crash_resume_identical ~domains:2 ~variant:Canonical.Positional ~p:3 ~q:3
    ~d:2 ()

(* Power-loss matrix through the fault seam (lib/fault): instead of a
   checkpoint hook raising mid-build, simulate a power cut at *every*
   syscall-level fault point the build passes - torn tails, lost
   renames and all - and require atomic publication plus a
   byte-identical resume at each point. *)
let power_loss_matrix ~domains () =
  with_tmp_dir @@ fun dir ->
  let s =
    Umrs_chaos.Harness.crash_matrix ~domains ~checkpoint_every:1024
      ~seed:(Gen.base_seed ()) ~p:2 ~q:4 ~d:3 ~scratch:dir ()
  in
  List.iter
    (fun f ->
      Printf.eprintf "power-loss point %d (seed %d): %s\n"
        f.Umrs_chaos.Harness.f_at f.Umrs_chaos.Harness.f_seed
        f.Umrs_chaos.Harness.f_detail)
    s.Umrs_chaos.Harness.s_failures;
  check_true "every point crashed"
    (s.Umrs_chaos.Harness.s_crashes = s.Umrs_chaos.Harness.s_points);
  check_int "failures" 0 (List.length s.Umrs_chaos.Harness.s_failures)

let test_resume_demands_matching_instance () =
  with_tmp_dir @@ fun dir ->
  let ckdir = Filename.concat dir "ck" in
  let out = Filename.concat dir "x.corpus" in
  (try
     ignore
       (Builder.build ~p:2 ~q:4 ~d:3 ~out ~checkpoint_dir:ckdir
          ~checkpoint_every:300
          ~on_checkpoint:(fun ~shard:_ ~done_hi:_ -> raise Crash)
          ())
   with Crash -> ());
  check_true "resume with different d rejected"
    (try
       ignore
         (Builder.build ~p:2 ~q:4 ~d:2 ~out ~checkpoint_dir:ckdir
            ~resume:true ());
       false
     with Invalid_argument _ -> true)

(* ---------- telemetry ---------- *)

(* Minimal JSONL event-line validator for the documented schema:
   {"ts": <float>, "event": "<name>", "fields": {...}}. *)
let valid_event_line line =
  let starts_with pre s =
    String.length s >= String.length pre
    && String.sub s 0 (String.length pre) = pre
  in
  starts_with "{\"ts\": " line
  && (let rest =
        String.sub line 7 (String.length line - 7)
      in
      match String.index_opt rest ',' with
      | None -> false
      | Some i -> (
        match float_of_string_opt (String.sub rest 0 i) with
        | None -> false
        | Some ts -> ts >= 0.0))
  && String.length line >= 2
  && line.[String.length line - 1] = '}'

let contains ~sub s =
  let n = String.length sub in
  let rec go i =
    i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
  in
  go 0

let test_telemetry_jsonl_schema () =
  with_tmp_dir @@ fun dir ->
  let log = Filename.concat dir "events.jsonl" in
  Telemetry.with_file log (fun () ->
      let c = Telemetry.counter "widgets" in
      Telemetry.add c 41;
      Telemetry.add c 1;
      ignore (Builder.build ~p:2 ~q:2 ~d:3
                ~out:(Filename.concat dir "t.corpus")
                ~checkpoint_dir:(Filename.concat dir "ck")
                ~checkpoint_every:20 ());
      ignore (Enumerate.canonical_set ~p:2 ~q:2 ~d:2 ()));
  let ic = open_in log in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  let lines = List.rev !lines in
  check_true "events were written" (List.length lines >= 4);
  List.iter
    (fun line ->
      check_true ("schema: " ^ line) (valid_event_line line);
      check_true ("has event name: " ^ line)
        (contains ~sub:"\"event\": \"" line);
      check_true ("has fields: " ^ line)
        (contains ~sub:"\"fields\": {" line))
    lines;
  check_true "build start logged"
    (List.exists (contains ~sub:"\"event\": \"corpus.build.start\"") lines);
  check_true "checkpoints logged"
    (List.exists (contains ~sub:"\"event\": \"corpus.checkpoint\"") lines);
  check_true "build done logged"
    (List.exists (contains ~sub:"\"event\": \"corpus.build.done\"") lines);
  check_true "metrics flushed on close"
    (List.exists
       (fun l ->
         contains ~sub:"\"event\": \"metrics\"" l
         && contains ~sub:"\"widgets\": 42" l)
       lines);
  check_true "enumerate instrumented"
    (List.exists (contains ~sub:"\"event\": \"enumerate.") lines)

let test_telemetry_flush_mid_stream () =
  with_tmp_dir @@ fun dir ->
  let log = Filename.concat dir "flush.jsonl" in
  Telemetry.open_file log;
  Telemetry.emit "first" [ ("k", Telemetry.Int 1) ];
  Telemetry.flush ();
  (* the sink is still open, yet the event is already whole on disk -
     what a server's drain path relies on before closing connections *)
  let ic = open_in log in
  let line = input_line ic in
  close_in ic;
  check_true "complete line on disk" (valid_event_line line);
  check_true "it is the event" (contains ~sub:"\"event\": \"first\"" line);
  Telemetry.close ();
  (* no sink: flush is a no-op, not an error *)
  Telemetry.flush ()

let test_telemetry_escaping () =
  with_tmp_dir @@ fun dir ->
  let log = Filename.concat dir "esc.jsonl" in
  Telemetry.with_file log (fun () ->
      Telemetry.emit "weird"
        [ ("s", Telemetry.Str "a\"b\\c\nd"); ("ok", Telemetry.Bool true) ]);
  let ic = open_in log in
  let line = input_line ic in
  close_in ic;
  check_true "quote escaped" (contains ~sub:"a\\\"b\\\\c\\nd" line);
  check_true "no raw newline inside line" (not (String.contains line '\n'))

let test_telemetry_noop_allocates_nothing () =
  Telemetry.reset_for_tests ();
  let c = Telemetry.counter "hot" in
  (* Warm up so any one-time allocation is out of the way. *)
  Telemetry.add c 1;
  if Telemetry.enabled () then Telemetry.emit "x" [ ("a", Telemetry.Int 1) ];
  let before = Gc.minor_words () in
  for _ = 1 to 10_000 do
    Telemetry.add c 1;
    if Telemetry.enabled () then
      Telemetry.emit "hot.event" [ ("a", Telemetry.Int 1) ]
  done;
  let words = Gc.minor_words () -. before in
  (* Gc.minor_words itself boxes a float per call; allow a tiny slack
     rather than exactly zero. *)
  check_true
    (Printf.sprintf "no per-event allocation (%.0f words for 10k events)" words)
    (words < 100.0)

let test_telemetry_disabled_by_default () =
  Telemetry.reset_for_tests ();
  check_true "disabled by default" (not (Telemetry.enabled ()));
  (* emit without a sink is a harmless no-op *)
  Telemetry.emit "nobody.listening" [ ("x", Telemetry.Int 1) ];
  Telemetry.flush_metrics ();
  check_int "span still runs f" 7 (Telemetry.span "s" (fun () -> 7))

(* ---------- suite ---------- *)

let suite =
  [
    case "record roundtrip (all instances/variants)" test_record_roundtrip;
    case "record rejects bad input" test_record_rejects_bad_entry;
    case "corpus write/load roundtrip" test_corpus_roundtrip;
    case "corpus bytes independent of domains" test_corpus_byte_identity_across_domains;
    case "corpus streaming reader order" test_corpus_streaming_reader;
    case "writer enforces sort order" test_writer_rejects_unsorted;
    case "verify detects damage" test_verify_detects_damage;
    case "reader rejects wrong header" test_reader_rejects_wrong_header;
    case "checkpoint manifest roundtrip" test_manifest_roundtrip;
    case "checkpoint shard roundtrip" test_shard_roundtrip;
    case "crash+resume identical (1 domain)" test_crash_resume_1_domain;
    case "crash+resume identical (3 domains)" test_crash_resume_3_domains;
    case "crash+resume identical (positional)" test_crash_resume_positional;
    case "power-loss matrix (1 domain)" (power_loss_matrix ~domains:1);
    case "power-loss matrix (3 domains)" (power_loss_matrix ~domains:3);
    case "resume rejects instance mismatch" test_resume_demands_matching_instance;
    case "telemetry jsonl schema" test_telemetry_jsonl_schema;
    case "telemetry flush mid-stream" test_telemetry_flush_mid_stream;
    case "telemetry escapes strings" test_telemetry_escaping;
    case "telemetry no-op allocates nothing" test_telemetry_noop_allocates_nothing;
    case "telemetry disabled by default" test_telemetry_disabled_by_default;
  ]
